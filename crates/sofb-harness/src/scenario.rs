//! The declarative Scenario API: one validated spec plus one runner for
//! every experiment, flat or sharded.
//!
//! A [`Scenario`] is a plain value describing a complete experiment —
//! protocol kind, resilience, crypto scheme, shard count and router
//! policy, client workload (rate, size, arrival process, load mapping),
//! network/CPU models, a fault plan with pre/post-GST windows, the
//! measurement window and the seed. [`Scenario::validate`] rejects
//! malformed specs with typed [`ScenarioError`]s (never a panic);
//! [`Scenario::run_as`] lowers a valid spec onto the existing builders —
//! `shards == 1` onto the flat [`WorldBuilder`] path, `shards > 1` onto
//! [`ShardedWorldBuilder`] — runs the world and summarizes the
//! observation log into a uniform [`Report`]. A one-shard scenario
//! realizes the *bit-identical* event trace of the legacy flat builder
//! (pinned by the golden-equivalence tests).
//!
//! On top of the spec sits the [`SweepGrid`] engine: declare [`Axis`]
//! values over any scenario field, take the cartesian product, replicate
//! across seeds, and execute the points on worker threads with
//! deterministic result ordering — the same [`GridReport`] regardless of
//! worker count.
//!
//! Dispatching a [`ProtocolKind`] to its concrete [`Protocol`]
//! implementation requires seeing every protocol crate, which sit
//! *above* this one; the umbrella crate (`sofbyz::scenario::run`)
//! provides that dispatch, and sweep drivers thread it in through
//! [`SweepGrid::run_with`].

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sofb_crypto::scheme::SchemeId;
use sofb_obs::{MemSink, MetricsSnapshot, TraceConfig, TraceRecord};
use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_proto::topology::Variant;
use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::LinkModel;
use sofb_sim::engine::TimedEvent;
use sofb_sim::metrics::{EngineCounters, GroupRollup};
use sofb_sim::time::{SimDuration, SimTime};

use crate::analysis;
use crate::builder::WorldBuilder;
use crate::client::{Arrival, ClientSpec};
use crate::event::ProtocolEvent;
use crate::fault::FaultSpec;
use crate::protocol::{Knobs, Links, Protocol, ProtocolKind};
use crate::shard::{RouterConfigError, ShardLoad, ShardRouter, ShardedWorldBuilder};

/// Measurement window for one scenario run: clients stop issuing at
/// `run_s`, the world keeps draining until `run_s + drain_s`, and the
/// first `warmup_s` seconds are excluded from measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Warm-up excluded from measurement (seconds, virtual).
    pub warmup_s: u64,
    /// Total run length (seconds, virtual).
    pub run_s: u64,
    /// Extra drain time after clients stop, so saturated batches still
    /// commit and report their (large) latencies as the paper's
    /// log-scale figures do.
    pub drain_s: u64,
}

impl Default for Window {
    fn default() -> Self {
        Window {
            warmup_s: 4,
            run_s: 14,
            drain_s: 45,
        }
    }
}

impl Window {
    /// Start of the measurement interval.
    pub fn warmup(&self) -> SimTime {
        SimTime::from_secs(self.warmup_s)
    }

    /// End of the measurement interval (clients stop here).
    pub fn end(&self) -> SimTime {
        SimTime::from_secs(self.run_s)
    }

    /// End of the run including the drain period.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs(self.run_s + self.drain_s)
    }
}

/// One synthetic client's workload inside a scenario: the rate, request
/// size, arrival process and (for sharded worlds) load mapping. The stop
/// time is derived from the scenario's [`Window`] — clients always stop
/// where the measurement window ends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientLoad {
    /// Requests per second (total, or per shard under
    /// [`ShardLoad::PerShard`]).
    pub rate_per_sec: f64,
    /// Payload size in bytes.
    pub request_size: usize,
    /// Arrival process.
    pub arrival: Arrival,
    /// How the rate maps onto a sharded world (ignored when
    /// `shards == 1`).
    pub load: ShardLoad,
    /// How many simulated clients this entry stands for. The default 1
    /// deploys one [`ClientActor`](crate::client::ClientActor); larger
    /// counts aggregate into a single
    /// [`ClientPopulation`](crate::population::ClientPopulation) actor
    /// (each member offering `rate_per_sec`), so a world carries
    /// 10⁵–10⁶ simulated users at O(1) actor cost. Must be ≥ 1.
    pub population: usize,
}

impl ClientLoad {
    /// A constant-rate client (the paper's workload).
    pub fn constant(rate_per_sec: f64, request_size: usize) -> Self {
        ClientLoad {
            rate_per_sec,
            request_size,
            arrival: Arrival::Constant,
            load: ShardLoad::Global,
            population: 1,
        }
    }

    /// An open-loop Poisson client at the same mean rate.
    pub fn poisson(rate_per_sec: f64, request_size: usize) -> Self {
        ClientLoad {
            arrival: Arrival::Poisson,
            ..ClientLoad::constant(rate_per_sec, request_size)
        }
    }

    /// Switches the load mapping to fixed-per-shard (the client issues
    /// at `rate × shards`, dealt round-robin).
    pub fn per_shard(mut self) -> Self {
        self.load = ShardLoad::PerShard;
        self
    }

    /// Aggregates this entry into a population of `n` simulated clients
    /// sharing the spec, each offering `rate_per_sec` (see
    /// [`ClientLoad::population`]). Validation rejects 0.
    pub fn population(mut self, n: usize) -> Self {
        self.population = n;
        self
    }
}

/// How a sharded scenario routes requests to shards.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum RouterPolicy {
    /// Stable key hashing over the shard count ([`ShardRouter::hash`]).
    #[default]
    Hash,
    /// `shards` equal slices of the key space
    /// ([`ShardRouter::even_ranges`]).
    EvenRanges,
    /// Explicit inclusive key ranges, shard `i` owning `ranges[i]`;
    /// validated like [`ShardRouter::ranges`] — malformed configurations
    /// are a [`ScenarioError::Router`], never a panic.
    Ranges(Vec<(u64, u64)>),
}

impl RouterPolicy {
    /// Builds the router for a world of `shards` groups (shared with
    /// the parallel runner; public so trace oracles outside the crate
    /// can reconstruct the routing a scenario implies).
    pub fn build(&self, shards: usize) -> Result<ShardRouter, ScenarioError> {
        let router = match self {
            RouterPolicy::Hash => ShardRouter::hash(shards),
            RouterPolicy::EvenRanges => ShardRouter::even_ranges(shards),
            RouterPolicy::Ranges(ranges) => {
                ShardRouter::ranges(ranges.clone()).map_err(ScenarioError::Router)?
            }
        };
        if router.shard_count() != shards {
            return Err(ScenarioError::RouterShardMismatch {
                router: router.shard_count(),
                world: shards,
            });
        }
        Ok(router)
    }
}

/// A protocol-agnostic fault behaviour inside a scenario's fault plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioFaultKind {
    /// Halt the process at the given time.
    Crash {
        /// When the crash takes effect.
        at: SimTime,
    },
    /// Drop every message the process sends within the window
    /// (`until = None`: forever) — the pre-GST silence shape.
    Mute {
        /// When the mute takes effect.
        from: SimTime,
        /// When the mute lifts (`None`: forever).
        until: Option<SimTime>,
    },
    /// Add `extra` one-way latency to every message the process sends
    /// within the window — pre-GST asynchrony that lifts at the Global
    /// Stabilization Time.
    Delay {
        /// When the degradation starts.
        from: SimTime,
        /// When the degradation lifts (`None`: forever).
        until: Option<SimTime>,
        /// Added one-way latency.
        extra: SimDuration,
    },
    /// Transmit every message the process sends within the window twice,
    /// the duplicate under an independently sampled link latency — an
    /// at-least-once transport retrying spuriously.
    Duplicate {
        /// When duplication starts.
        from: SimTime,
        /// When duplication stops (`None`: forever).
        until: Option<SimTime>,
    },
    /// Add a uniformly sampled extra delay in `[0, jitter]` to every
    /// message the process sends within the window — deterministic
    /// message reordering within a known delay bound.
    Reorder {
        /// When the jitter starts.
        from: SimTime,
        /// When the jitter stops (`None`: forever).
        until: Option<SimTime>,
        /// Upper bound of the sampled per-message extra delay.
        jitter: SimDuration,
    },
    /// Value-domain corruption of the order carrying sequence number
    /// `o` — the Figure-6 fail-over trigger. Only SC/SCR script this;
    /// scenarios targeting other kinds are rejected at validation.
    CorruptOrderAt {
        /// The corrupted order's sequence number.
        o: SeqNo,
    },
}

/// One fault plan entry: which process of which shard misbehaves, and
/// how.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScenarioFault {
    /// The targeted ordering group (0 in a flat world).
    pub shard: usize,
    /// The targeted process, shard-relative.
    pub process: ProcessId,
    /// The behaviour.
    pub kind: ScenarioFaultKind,
}

impl ScenarioFault {
    /// A crash of `process` (shard 0) at `at`.
    pub fn crash(process: ProcessId, at: SimTime) -> Self {
        ScenarioFault {
            shard: 0,
            process,
            kind: ScenarioFaultKind::Crash { at },
        }
    }

    /// A mute window `[from, until)` on `process` (shard 0).
    pub fn mute_until(process: ProcessId, from: SimTime, until: SimTime) -> Self {
        ScenarioFault {
            shard: 0,
            process,
            kind: ScenarioFaultKind::Mute {
                from,
                until: Some(until),
            },
        }
    }

    /// A delay window `[from, until)` of `extra` on `process` (shard 0).
    pub fn delay_until(
        process: ProcessId,
        from: SimTime,
        until: SimTime,
        extra: SimDuration,
    ) -> Self {
        ScenarioFault {
            shard: 0,
            process,
            kind: ScenarioFaultKind::Delay {
                from,
                until: Some(until),
                extra,
            },
        }
    }

    /// A duplication window `[from, until)` on `process` (shard 0).
    pub fn duplicate_until(process: ProcessId, from: SimTime, until: SimTime) -> Self {
        ScenarioFault {
            shard: 0,
            process,
            kind: ScenarioFaultKind::Duplicate {
                from,
                until: Some(until),
            },
        }
    }

    /// A reorder window `[from, until)` with jitter bound `jitter` on
    /// `process` (shard 0).
    pub fn reorder_until(
        process: ProcessId,
        from: SimTime,
        until: SimTime,
        jitter: SimDuration,
    ) -> Self {
        ScenarioFault {
            shard: 0,
            process,
            kind: ScenarioFaultKind::Reorder {
                from,
                until: Some(until),
                jitter,
            },
        }
    }

    /// A value-domain corruption of sequence `o` at `process` (shard 0).
    pub fn corrupt_order_at(process: ProcessId, o: SeqNo) -> Self {
        ScenarioFault {
            shard: 0,
            process,
            kind: ScenarioFaultKind::CorruptOrderAt { o },
        }
    }

    /// Re-targets the fault at another shard.
    pub fn on_shard(mut self, shard: usize) -> Self {
        self.shard = shard;
        self
    }
}

/// A rejected scenario: every variant names the offending field so sweep
/// authors can fix the spec without reading the validator.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// `f` is below what the variant's layout needs (every hosted
    /// variant needs `f ≥ 1`).
    InvalidResilience {
        /// The scenario's protocol kind.
        kind: ProtocolKind,
        /// The rejected resilience.
        f: u32,
    },
    /// `window.run_s ≤ window.warmup_s`: nothing would be measured.
    EmptyWindow {
        /// The window's warm-up seconds.
        warmup_s: u64,
        /// The window's run seconds.
        run_s: u64,
    },
    /// `kind` is SC/SCR but `knobs.variant` names the other layout.
    VariantMismatch {
        /// The scenario's protocol kind.
        kind: ProtocolKind,
        /// The conflicting knob value.
        variant: Variant,
    },
    /// `shards` is zero.
    NoShards,
    /// The explicit-range router policy is malformed.
    Router(RouterConfigError),
    /// The router's shard count differs from the world's.
    RouterShardMismatch {
        /// Shards the router spreads keys over.
        router: usize,
        /// Shards the world actually has.
        world: usize,
    },
    /// A client's rate is not a positive finite number.
    ClientRate {
        /// Index into `clients`.
        client: usize,
        /// The rejected rate.
        rate: f64,
    },
    /// A client entry's population is zero.
    ClientPopulation {
        /// Index into `clients`.
        client: usize,
    },
    /// A fault targets a shard outside the world.
    FaultShard {
        /// Index into `faults`.
        fault: usize,
        /// The targeted shard.
        shard: usize,
        /// The world's shard count.
        shards: usize,
    },
    /// A fault targets a process outside its shard's process set.
    FaultProcess {
        /// Index into `faults`.
        fault: usize,
        /// The targeted process.
        process: ProcessId,
        /// The shard's process count.
        n: usize,
    },
    /// A windowed fault's `until` does not exceed its `from`.
    FaultWindow {
        /// Index into `faults`.
        fault: usize,
        /// Window start.
        from: SimTime,
        /// Window end (≤ start — the defect).
        until: SimTime,
    },
    /// A fault kind the scenario's protocol kind cannot script (e.g.
    /// `CorruptOrderAt` on BFT/CT).
    UnsupportedFault {
        /// Index into `faults`.
        fault: usize,
        /// The scenario's protocol kind.
        kind: ProtocolKind,
    },
    /// An error raised while expanding or running one grid point,
    /// wrapped with the point's deterministic index.
    GridPoint {
        /// The failing point's index in grid order.
        index: usize,
        /// The underlying error.
        source: Box<ScenarioError>,
    },
    /// A sweep worker thread died before reporting its point's result.
    WorkerLost {
        /// The abandoned point's index in grid order.
        index: usize,
    },
    /// A parallel-world worker thread died before reporting its
    /// shard's result.
    WorldWorkerLost {
        /// The abandoned shard's index.
        shard: usize,
    },
    /// The scenario was lowered onto a protocol implementation whose
    /// layout does not match its `kind` (wrong `run_as::<P>()` call).
    ProtocolMismatch {
        /// The scenario's protocol kind.
        kind: ProtocolKind,
        /// The hosted protocol's display name.
        protocol: &'static str,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::InvalidResilience { kind, f: got } => {
                write!(f, "field `f`: {kind} needs f >= 1, got {got}")
            }
            ScenarioError::EmptyWindow { warmup_s, run_s } => write!(
                f,
                "field `window`: empty measurement window (run_s {run_s} <= warmup_s {warmup_s})"
            ),
            ScenarioError::VariantMismatch { kind, variant } => write!(
                f,
                "field `knobs.variant`: kind {kind} conflicts with variant {variant:?}"
            ),
            ScenarioError::NoShards => write!(f, "field `shards`: a world needs at least 1 shard"),
            ScenarioError::Router(e) => write!(f, "field `router`: {e}"),
            ScenarioError::RouterShardMismatch { router, world } => write!(
                f,
                "field `router`: router covers {router} shard(s) but the world has {world}"
            ),
            ScenarioError::ClientRate { client, rate } => write!(
                f,
                "field `clients[{client}].rate_per_sec`: rate must be positive and finite, got {rate}"
            ),
            ScenarioError::ClientPopulation { client } => write!(
                f,
                "field `clients[{client}].population`: a population needs at least 1 client"
            ),
            ScenarioError::FaultShard {
                fault,
                shard,
                shards,
            } => write!(
                f,
                "field `faults[{fault}].shard`: shard {shard} outside the world's {shards} shard(s)"
            ),
            ScenarioError::FaultProcess { fault, process, n } => write!(
                f,
                "field `faults[{fault}].process`: process {process} outside the shard's {n} process(es)"
            ),
            ScenarioError::FaultWindow { fault, from, until } => write!(
                f,
                "field `faults[{fault}]`: window end {until:?} must exceed start {from:?}"
            ),
            ScenarioError::UnsupportedFault { fault, kind } => write!(
                f,
                "field `faults[{fault}]`: {kind} cannot script value-domain faults"
            ),
            ScenarioError::GridPoint { index, source } => {
                write!(f, "grid point {index}: {source}")
            }
            ScenarioError::WorkerLost { index } => {
                write!(f, "grid point {index}: worker thread died before reporting")
            }
            ScenarioError::WorldWorkerLost { shard } => write!(
                f,
                "shard {shard}: world-worker thread died before reporting"
            ),
            ScenarioError::ProtocolMismatch { kind, protocol } => write!(
                f,
                "field `kind`: {kind} lowered onto protocol {protocol}, whose layout differs"
            ),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::GridPoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A complete, declarative experiment description.
///
/// Construct with [`Scenario::new`] (plain defaults) or
/// [`Scenario::bench`] (the §5 measurement posture), refine with the
/// builder methods or by writing fields directly (every field is
/// public — that is what lets [`Axis`] patches sweep any of them), then
/// [`Scenario::validate`] / [`Scenario::run_as`].
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Which protocol family to deploy.
    pub kind: ProtocolKind,
    /// The shared knob set (resilience, scheme, seed, batching, …);
    /// `knobs.variant` must agree with `kind` for SC/SCR.
    pub knobs: Knobs,
    /// Number of independent ordering groups (1 = the flat world).
    pub shards: usize,
    /// Request-to-shard routing policy (ignored when `shards == 1`).
    pub router: RouterPolicy,
    /// The synthetic client workload.
    pub clients: Vec<ClientLoad>,
    /// The two link classes of the testbed.
    pub links: Links,
    /// CPU model of every order process.
    pub cpu: CpuModel,
    /// The fault plan, `(shard, process)`-addressed.
    pub faults: Vec<ScenarioFault>,
    /// Measurement window (also derives the clients' stop time).
    pub window: Window,
    /// Worker threads for parallel shard execution. The default 0
    /// keeps the legacy single-threaded shared-world engine; any value
    /// ≥ 1 switches a multi-shard scenario to isolated per-shard
    /// engines executed on up to `world_workers` threads, with the
    /// per-shard traces merged deterministically — every value ≥ 1
    /// realizes the identical schedule, bit for bit (1 worker runs the
    /// same per-shard path inline). Ignored when `shards == 1`, like
    /// [`Scenario::router`]: a flat world has nothing to split.
    pub world_workers: usize,
}

impl Scenario {
    /// A fail-free single-group scenario of `kind` with the paper's
    /// default knobs and no clients.
    pub fn new(kind: ProtocolKind) -> Self {
        let mut knobs = Knobs::default();
        if let Some(v) = kind.variant() {
            knobs.variant = v;
        }
        Scenario {
            kind,
            knobs,
            shards: 1,
            router: RouterPolicy::Hash,
            clients: Vec::new(),
            links: Links::default(),
            cpu: CpuModel::default(),
            faults: Vec::new(),
            window: Window::default(),
            world_workers: 0,
        }
    }

    /// The §5 measurement posture: [`Scenario::new`] plus time-domain
    /// detection off (best case — "no failures and also no suspicions of
    /// failures", so saturation cannot masquerade as a failure) and the
    /// standard offered load (three constant-rate clients × 100 req/s ×
    /// 100-byte requests — enough to fill 1 KB batches at the smallest
    /// swept interval).
    pub fn bench(kind: ProtocolKind) -> Self {
        let mut s = Scenario::new(kind);
        s.knobs.time_checks = false;
        s.clients = vec![ClientLoad::constant(100.0, 100); 3];
        s
    }

    /// Re-targets the scenario at another protocol kind (keeps
    /// `knobs.variant` in sync — what the kind [`Axis`] patches through).
    pub fn set_kind(&mut self, kind: ProtocolKind) {
        self.kind = kind;
        if let Some(v) = kind.variant() {
            self.knobs.variant = v;
        }
    }

    /// Sets the resilience parameter.
    pub fn f(mut self, f: u32) -> Self {
        self.knobs.f = f;
        self
    }

    /// Sets the crypto scheme.
    pub fn scheme(mut self, scheme: SchemeId) -> Self {
        self.knobs.scheme = scheme;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.knobs.seed = seed;
        self
    }

    /// Sets the batching interval in milliseconds.
    pub fn interval_ms(mut self, ms: u64) -> Self {
        self.knobs.batching_interval = SimDuration::from_ms(ms);
        self
    }

    /// Sets the shadow's proposal-timeliness estimate (SC/SCR).
    pub fn order_timeout(mut self, d: SimDuration) -> Self {
        self.knobs.order_timeout = d;
        self
    }

    /// Pads BackLogs (Figure 6's size sweep; SC/SCR).
    pub fn backlog_pad(mut self, pad: usize) -> Self {
        self.knobs.backlog_pad = pad;
        self
    }

    /// Enables/disables time-domain failure detection (SC/SCR).
    pub fn time_checks(mut self, on: bool) -> Self {
        self.knobs.time_checks = on;
        self
    }

    /// Enables BFT view changes with the given request timeout.
    pub fn request_timeout(mut self, d: SimDuration) -> Self {
        self.knobs.request_timeout = Some(d);
        self
    }

    /// Sets the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the request-routing policy.
    pub fn router(mut self, policy: RouterPolicy) -> Self {
        self.router = policy;
        self
    }

    /// Sets the parallel world-worker count (see
    /// [`Scenario::world_workers`]): ≥ 1 runs each shard of a
    /// multi-shard world in its own isolated engine, on up to that many
    /// threads, with a deterministic trace merge.
    pub fn world_workers(mut self, workers: usize) -> Self {
        self.world_workers = workers;
        self
    }

    /// Appends one client.
    pub fn client(mut self, load: ClientLoad) -> Self {
        self.clients.push(load);
        self
    }

    /// Replaces the client set with `n` copies of `load`.
    pub fn clients(mut self, n: usize, load: ClientLoad) -> Self {
        self.clients = vec![load; n];
        self
    }

    /// Appends one fault plan entry.
    pub fn fault(mut self, fault: ScenarioFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the measurement window.
    pub fn window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Overrides the asynchronous-network link model.
    pub fn lan_link(mut self, link: LinkModel) -> Self {
        self.links.lan = link;
        self
    }

    /// Overrides the intra-pair link model (SC/SCR).
    pub fn pair_link(mut self, link: LinkModel) -> Self {
        self.links.pair = link;
        self
    }

    /// Overrides the CPU model of every process node.
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Order processes per shard for this spec (the kind's layout
    /// formula; cross-checked against `P::node_count` at lowering).
    pub fn nodes_per_shard(&self) -> usize {
        self.kind.node_count(self.knobs.f)
    }

    /// Total requests the client set offers within `[0, run_s]` — the
    /// denominator of delivery-ratio metrics.
    pub fn offered_requests(&self) -> f64 {
        let secs = self.window.run_s as f64;
        self.clients
            .iter()
            .map(|c| {
                let mult = match (self.shards, c.load) {
                    (s, ShardLoad::PerShard) if s > 1 => s as f64,
                    _ => 1.0,
                };
                c.rate_per_sec * mult * secs * c.population as f64
            })
            .sum()
    }

    /// Checks the spec, returning the first defect as a typed error that
    /// names the offending field. A `Ok(())` spec never panics inside
    /// the builders it lowers onto.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.knobs.f == 0 {
            return Err(ScenarioError::InvalidResilience {
                kind: self.kind,
                f: self.knobs.f,
            });
        }
        if self.window.run_s <= self.window.warmup_s {
            return Err(ScenarioError::EmptyWindow {
                warmup_s: self.window.warmup_s,
                run_s: self.window.run_s,
            });
        }
        if let Some(v) = self.kind.variant() {
            if self.knobs.variant != v {
                return Err(ScenarioError::VariantMismatch {
                    kind: self.kind,
                    variant: self.knobs.variant,
                });
            }
        }
        if self.shards == 0 {
            return Err(ScenarioError::NoShards);
        }
        if self.shards > 1 {
            self.router.build(self.shards)?;
        } else if let RouterPolicy::Ranges(ranges) = &self.router {
            // Even unused, a malformed policy is a defect worth naming.
            ShardRouter::ranges(ranges.clone()).map_err(ScenarioError::Router)?;
        }
        for (i, c) in self.clients.iter().enumerate() {
            if !(c.rate_per_sec.is_finite() && c.rate_per_sec > 0.0) {
                return Err(ScenarioError::ClientRate {
                    client: i,
                    rate: c.rate_per_sec,
                });
            }
            if c.population == 0 {
                return Err(ScenarioError::ClientPopulation { client: i });
            }
        }
        let n = self.nodes_per_shard();
        for (i, fault) in self.faults.iter().enumerate() {
            if fault.shard >= self.shards {
                return Err(ScenarioError::FaultShard {
                    fault: i,
                    shard: fault.shard,
                    shards: self.shards,
                });
            }
            if fault.process.0 as usize >= n {
                return Err(ScenarioError::FaultProcess {
                    fault: i,
                    process: fault.process,
                    n,
                });
            }
            match fault.kind {
                ScenarioFaultKind::Mute {
                    from,
                    until: Some(until),
                }
                | ScenarioFaultKind::Delay {
                    from,
                    until: Some(until),
                    ..
                }
                | ScenarioFaultKind::Duplicate {
                    from,
                    until: Some(until),
                }
                | ScenarioFaultKind::Reorder {
                    from,
                    until: Some(until),
                    ..
                } if until <= from => {
                    return Err(ScenarioError::FaultWindow {
                        fault: i,
                        from,
                        until,
                    });
                }
                ScenarioFaultKind::CorruptOrderAt { .. }
                    if !matches!(self.kind, ProtocolKind::Sc | ProtocolKind::Scr) =>
                {
                    return Err(ScenarioError::UnsupportedFault {
                        fault: i,
                        kind: self.kind,
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Lowers one fault entry onto the uniform [`FaultSpec`] of the
    /// hosted protocol (shared with the parallel runner).
    pub(crate) fn lower_fault<P: Protocol>(
        &self,
        index: usize,
        fault: &ScenarioFault,
    ) -> Result<FaultSpec<P::Byz>, ScenarioError> {
        Ok(match fault.kind {
            ScenarioFaultKind::Crash { at } => FaultSpec::Crash { at },
            ScenarioFaultKind::Mute { from, until } => FaultSpec::Mute { from, until },
            ScenarioFaultKind::Delay { from, until, extra } => {
                FaultSpec::Delay { from, until, extra }
            }
            ScenarioFaultKind::Duplicate { from, until } => FaultSpec::Duplicate { from, until },
            ScenarioFaultKind::Reorder {
                from,
                until,
                jitter,
            } => FaultSpec::Reorder {
                from,
                until,
                jitter,
            },
            ScenarioFaultKind::CorruptOrderAt { o } => {
                FaultSpec::Byzantine(P::value_fault(o).ok_or(ScenarioError::UnsupportedFault {
                    fault: index,
                    kind: self.kind,
                })?)
            }
        })
    }

    /// Validates, lowers onto protocol `P`, runs to the window's horizon
    /// and summarizes.
    ///
    /// `P` must be the implementation of the scenario's `kind` — the
    /// umbrella crate's `sofbyz::scenario::run` centralizes that
    /// dispatch. Panics (like every harness runner) if the run violates
    /// total-order safety.
    pub fn run_as<P: Protocol>(&self) -> Result<Report, ScenarioError> {
        self.run_traced_as::<P>().map(|(report, _)| report)
    }

    /// [`Scenario::run_as`], additionally returning the raw observation
    /// log (what the golden-equivalence tests compare bit for bit).
    #[allow(clippy::type_complexity)]
    pub fn run_traced_as<P: Protocol>(
        &self,
    ) -> Result<(Report, Vec<TimedEvent<ProtocolEvent>>), ScenarioError> {
        self.run_traced_with::<P>(true)
    }

    /// [`Scenario::run_traced_as`] without the panicking per-shard
    /// safety check: violations leave the trace intact for an outside
    /// oracle to inspect. This is the fuzzer's entry point — a fuzz run
    /// *wants* the violating trace back, not an abort.
    #[allow(clippy::type_complexity)]
    pub fn run_traced_unchecked_as<P: Protocol>(
        &self,
    ) -> Result<(Report, Vec<TimedEvent<ProtocolEvent>>), ScenarioError> {
        self.run_traced_with::<P>(false)
    }

    /// [`Scenario::run_traced_as`], additionally recording a structured
    /// trace through `config`: engine records (dispatch spans, deliver
    /// and fault instants) plus protocol phase spans derived from the
    /// observation log. The record stream is deterministic — bit-identical
    /// across `world_workers` counts, like the observation log itself.
    pub fn run_observed_as<P: Protocol>(
        &self,
        config: &TraceConfig,
    ) -> Result<ObservedRun, ScenarioError> {
        self.run_observed_with::<P>(true, Some(config))
    }

    /// [`Scenario::run_observed_as`] without the panicking per-shard
    /// safety check (the fuzzer's tracing entry point).
    pub fn run_observed_unchecked_as<P: Protocol>(
        &self,
        config: &TraceConfig,
    ) -> Result<ObservedRun, ScenarioError> {
        self.run_observed_with::<P>(false, Some(config))
    }

    #[allow(clippy::type_complexity)]
    fn run_traced_with<P: Protocol>(
        &self,
        enforce_safety: bool,
    ) -> Result<(Report, Vec<TimedEvent<ProtocolEvent>>), ScenarioError> {
        self.run_observed_with::<P>(enforce_safety, None)
            .map(|run| (run.report, run.events))
    }

    fn run_observed_with<P: Protocol>(
        &self,
        enforce_safety: bool,
        trace: Option<&TraceConfig>,
    ) -> Result<ObservedRun, ScenarioError> {
        self.validate()?;
        // The validation above bounds-checked fault targets against the
        // *kind's* layout; if the caller lowered onto the wrong `P`, that
        // guarantee is void — reject rather than let a builder assert
        // fire (node counts coincide only across genuinely compatible
        // layouts, e.g. SC and BFT at equal f).
        if P::node_count(&self.knobs) != self.nodes_per_shard() {
            return Err(ScenarioError::ProtocolMismatch {
                kind: self.kind,
                protocol: P::NAME,
            });
        }
        // A multi-shard world with an explicit worker count runs on the
        // isolated per-shard-engine path (deterministically identical
        // for every count ≥ 1); the default 0 keeps the legacy shared
        // single-threaded engine, whose realized schedule is pinned by
        // the golden traces.
        if self.shards > 1 && self.world_workers >= 1 {
            let mut run = crate::parallel::run_world_parallel::<P>(self, enforce_safety, trace)?;
            if let Some(cfg) = trace {
                crate::obs::push_phase_records(
                    &mut run.records,
                    &run.events,
                    self.nodes_per_shard(),
                    cfg,
                );
            }
            return Ok(run);
        }
        let stop = self.window.end();
        if self.shards == 1 {
            let mut b = WorldBuilder::<P>::new(self.knobs.f)
                .knobs(self.knobs.clone())
                .cpu(self.cpu)
                .lan_link(self.links.lan.clone())
                .pair_link(self.links.pair.clone());
            for c in &self.clients {
                let spec = ClientSpec::new(c.rate_per_sec, c.request_size, stop);
                b = if c.population > 1 {
                    b.client_population(spec, c.arrival, c.population)
                } else {
                    match c.arrival {
                        Arrival::Constant => b.client(spec),
                        Arrival::Poisson => b.poisson_client(spec),
                    }
                };
            }
            for (i, fault) in self.faults.iter().enumerate() {
                b = b.fault(fault.process, self.lower_fault::<P>(i, fault)?);
            }
            let mut d = b.build();
            if let Some(cfg) = trace {
                d.world.set_trace_sink(Box::new(MemSink::new(cfg.clone())));
            }
            d.start();
            d.run_until(self.window.horizon());
            let events = d.world.drain_events();
            let mut records = d.world.drain_trace();
            let report = summarize(
                &[&events],
                &events,
                self.window,
                d.world.messages_sent(),
                &[d.world.counters()],
                d.world.metrics(),
                enforce_safety,
            );
            if let Some(cfg) = trace {
                crate::obs::push_phase_records(&mut records, &events, self.nodes_per_shard(), cfg);
            }
            Ok(ObservedRun {
                report,
                events,
                records,
            })
        } else {
            let mut b = ShardedWorldBuilder::<P>::new(self.shards, self.knobs.f)
                .knobs(self.knobs.clone())
                .cpu(self.cpu)
                .lan_link(self.links.lan.clone())
                .pair_link(self.links.pair.clone())
                .router(self.router.build(self.shards)?);
            for c in &self.clients {
                let spec = ClientSpec::new(c.rate_per_sec, c.request_size, stop);
                b = b.client_population_with(spec, c.arrival, c.load, c.population);
            }
            for (i, fault) in self.faults.iter().enumerate() {
                b = b.fault(fault.shard, fault.process, self.lower_fault::<P>(i, fault)?);
            }
            let mut d = b.build();
            if let Some(cfg) = trace {
                d.world.set_trace_sink(Box::new(MemSink::new(cfg.clone())));
            }
            d.start();
            d.run_until(self.window.horizon());
            let events = d.world.drain_events();
            let mut records = d.world.drain_trace();
            let parts = d.partition_events(&events);
            let refs: Vec<&[TimedEvent<ProtocolEvent>]> =
                parts.iter().map(|p| p.as_slice()).collect();
            let report = summarize(
                &refs,
                &events,
                self.window,
                d.world.messages_sent(),
                &[d.world.counters()],
                d.world.metrics(),
                enforce_safety,
            );
            if let Some(cfg) = trace {
                crate::obs::push_phase_records(&mut records, &events, self.nodes_per_shard(), cfg);
            }
            Ok(ObservedRun {
                report,
                events,
                records,
            })
        }
    }
}

/// The full product of one observed scenario run: the measurement
/// report, the raw observation log, and the structured trace records
/// (engine spans/instants followed by derived protocol phase spans).
#[derive(Clone, Debug)]
pub struct ObservedRun {
    /// The same report [`Scenario::run_as`] returns.
    pub report: Report,
    /// The raw observation log (what golden tests compare bit for bit).
    pub events: Vec<TimedEvent<ProtocolEvent>>,
    /// Trace records in deterministic order, node indices world-global.
    pub records: Vec<TraceRecord>,
}

/// Mean / median / tail of one censored order-latency distribution (ms);
/// `None` when nothing committed in the window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Mean order latency.
    pub mean_ms: Option<f64>,
    /// Median order latency.
    pub p50_ms: Option<f64>,
    /// 99th-percentile order latency.
    pub p99_ms: Option<f64>,
}

/// One ordering group's measurements inside a [`Report`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardReport {
    /// The shard's censored order-latency distribution.
    pub latency: LatencySummary,
    /// Committed requests per process per second within the shard.
    pub throughput_per_process: f64,
    /// Requests first-committed inside the measurement window (each
    /// counted once).
    pub committed_requests: usize,
    /// Distinct batches the shard committed over the whole run.
    pub batches: usize,
}

/// The uniform result of one scenario run, flat or sharded: per-shard
/// measurements (one entry for a flat world) plus the cross-shard
/// rollup. Flat runs report the exact numbers the legacy `Point` path
/// reported; sharded runs the legacy `ShardedPoint` numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Per-shard measurements, in shard order.
    pub per_shard: Vec<ShardReport>,
    /// The latency distribution merged exactly across shards (equals
    /// `per_shard[0].latency` for a flat world).
    pub global: LatencySummary,
    /// Committed requests per process per second, world-wide.
    pub throughput_per_process: f64,
    /// Globally ordered requests per second (every request counted once,
    /// at its first commit inside the window).
    pub aggregate_throughput: f64,
    /// Messages transmitted per committed batch, world-wide.
    pub msgs_per_batch: f64,
    /// Fail-over latency (first fail-signal → first Start certificate),
    /// if the run exercised one.
    pub failover_ms: Option<f64>,
    /// Deterministic engine counters of the run (callbacks, heap
    /// traffic, arena high water, virtual horizon) — the numerators of
    /// host-performance rates. Seed-determined, so safe under the
    /// `PartialEq` determinism comparisons this struct participates in.
    pub engine: EngineCounters,
    /// The same counters per engine, before aggregation: one entry per
    /// isolated engine — per shard on the parallel path, a single entry
    /// for flat worlds and the legacy shared-engine path. Lets a
    /// parallel-scaling regression (arena high water, heap traffic) be
    /// attributed to a shard instead of disappearing into the sum.
    pub engine_per_shard: Vec<EngineCounters>,
    /// Deterministic named metrics scraped from the engine(s) — the
    /// counter set of [`sofb_sim::engine::World::metrics`], absorbed
    /// across shard engines like `NodeStats::absorb`.
    pub metrics: MetricsSnapshot,
}

impl Report {
    /// Requests first-committed inside the measurement window across all
    /// shards (the delivery-ratio numerator).
    pub fn committed_requests(&self) -> usize {
        self.per_shard.iter().map(|s| s.committed_requests).sum()
    }
}

/// One pass over a shard's commit events: distinct batches committed
/// overall, and the requests first-committed in `[from, to]` (each
/// counted once, at the earliest commit of its sequence number).
fn batches_and_requests_committed(
    events: &[TimedEvent<ProtocolEvent>],
    from: SimTime,
    to: SimTime,
) -> (usize, usize) {
    use std::collections::BTreeMap;
    let mut first: BTreeMap<SeqNo, (SimTime, usize)> = BTreeMap::new();
    for ev in events {
        if let ProtocolEvent::Committed { o, requests, .. } = &ev.event {
            first
                .entry(*o)
                .and_modify(|(t, _)| {
                    if ev.time < *t {
                        *t = ev.time;
                    }
                })
                .or_insert((ev.time, *requests));
        }
    }
    let requests = first
        .values()
        .filter(|(t, _)| *t >= from && *t <= to)
        .map(|(_, r)| r)
        .sum();
    (first.len(), requests)
}

/// The one measurement pass behind every scenario run: per-shard safety
/// check, censored latency distributions, the exact cross-shard rollup
/// and the world-wide counters. Shared with the parallel runner, which
/// feeds it per-shard traces from isolated engines.
pub(crate) fn summarize(
    shard_events: &[&[TimedEvent<ProtocolEvent>]],
    all_events: &[TimedEvent<ProtocolEvent>],
    window: Window,
    messages_sent: u64,
    engines: &[EngineCounters],
    metrics: MetricsSnapshot,
    enforce_safety: bool,
) -> Report {
    let engine = {
        let mut total = EngineCounters::default();
        for e in engines {
            total.absorb(e);
        }
        total
    };
    let warmup = window.warmup();
    let end = window.end();
    let horizon = window.horizon();

    let mut rollup = GroupRollup::new(shard_events.len());
    let mut per_shard = Vec::with_capacity(shard_events.len());
    let mut aggregate_requests = 0usize;
    let mut batches = 0usize;
    for (s, events) in shard_events.iter().enumerate() {
        // Safety is a per-shard property: each group runs its own
        // sequence space, so the total-order check applies within it.
        // Unchecked runs (the fuzzer) skip the abort and apply their own
        // oracles to the returned trace instead.
        if enforce_safety {
            analysis::check_total_order(events)
                .unwrap_or_else(|e| panic!("shard {s}: safety violated: {e}"));
        }
        let lat = analysis::latency_histogram_censored(events, warmup, end, horizon);
        rollup.merge_into(s, &lat);
        let latency = if lat.is_empty() {
            LatencySummary::default()
        } else {
            let ps = lat.percentiles(&[50.0, 99.0]);
            LatencySummary {
                mean_ms: Some(lat.mean()),
                p50_ms: Some(ps[0]),
                p99_ms: Some(ps[1]),
            }
        };
        let (shard_batches, committed) = batches_and_requests_committed(events, warmup, end);
        aggregate_requests += committed;
        batches += shard_batches;
        per_shard.push(ShardReport {
            latency,
            throughput_per_process: analysis::throughput_per_process(events, warmup, end),
            committed_requests: committed,
            batches: shard_batches,
        });
    }

    let window_s = (end - warmup).as_ns() as f64 / 1e9;
    let merged = rollup.merged();
    let global = if merged.is_empty() {
        LatencySummary::default()
    } else {
        let ps = merged.percentiles(&[50.0, 99.0]);
        LatencySummary {
            mean_ms: Some(merged.mean()),
            p50_ms: Some(ps[0]),
            p99_ms: Some(ps[1]),
        }
    };
    Report {
        per_shard,
        global,
        throughput_per_process: analysis::throughput_per_process(all_events, warmup, end),
        aggregate_throughput: aggregate_requests as f64 / window_s,
        msgs_per_batch: if batches == 0 {
            0.0
        } else {
            messages_sent as f64 / batches as f64
        },
        failover_ms: analysis::failover_latency_ms(all_events),
        engine,
        engine_per_shard: engines.to_vec(),
        metrics,
    }
}

/// A patch applied to a scenario by one axis value.
pub type ScenarioPatch = Arc<dyn Fn(&mut Scenario) + Send + Sync>;

/// One labelled value of a sweep axis.
#[derive(Clone)]
pub struct AxisValue {
    label: String,
    patch: ScenarioPatch,
}

/// One sweep dimension: a named list of labelled scenario patches.
///
/// The canned constructors cover the fields the repo sweeps today;
/// adding a new axis is one [`Axis::new`]`/`[`Axis::value`] chain — the
/// patch may write any public [`Scenario`] field (and may read fields
/// written by earlier axes, which are applied first).
#[derive(Clone)]
pub struct Axis {
    name: String,
    values: Vec<AxisValue>,
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field(
                "values",
                &self.values.iter().map(|v| &v.label).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Axis {
    /// An empty axis named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Axis {
            name: name.into(),
            values: Vec::new(),
        }
    }

    /// Appends a labelled patch.
    pub fn value(
        mut self,
        label: impl Into<String>,
        patch: impl Fn(&mut Scenario) + Send + Sync + 'static,
    ) -> Self {
        self.values.push(AxisValue {
            label: label.into(),
            patch: Arc::new(patch),
        });
        self
    }

    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the axis holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The protocol-kind axis (also re-syncs `knobs.variant`).
    pub fn kinds(kinds: &[ProtocolKind]) -> Self {
        let mut a = Axis::new("kind");
        for &k in kinds {
            a = a.value(k.to_string(), move |s| s.set_kind(k));
        }
        a
    }

    /// The resilience axis.
    pub fn resiliences(fs: &[u32]) -> Self {
        let mut a = Axis::new("f");
        for &f in fs {
            a = a.value(f.to_string(), move |s| s.knobs.f = f);
        }
        a
    }

    /// The crypto-scheme axis.
    pub fn schemes(schemes: &[SchemeId]) -> Self {
        let mut a = Axis::new("scheme");
        for &sc in schemes {
            a = a.value(sc.to_string(), move |s| s.knobs.scheme = sc);
        }
        a
    }

    /// The batching-interval axis (milliseconds).
    pub fn intervals_ms(intervals: &[u64]) -> Self {
        let mut a = Axis::new("interval_ms");
        for &ms in intervals {
            a = a.value(ms.to_string(), move |s| {
                s.knobs.batching_interval = SimDuration::from_ms(ms);
            });
        }
        a
    }

    /// The shard-count axis.
    pub fn shard_counts(shards: &[usize]) -> Self {
        let mut a = Axis::new("shards");
        for &n in shards {
            a = a.value(n.to_string(), move |s| s.shards = n);
        }
        a
    }

    /// The client-count axis: replaces the client set with `n` copies of
    /// its first entry (or the standard 100 req/s constant client when
    /// the set is empty).
    pub fn client_counts(counts: &[usize]) -> Self {
        let mut a = Axis::new("clients");
        for &n in counts {
            a = a.value(n.to_string(), move |s| {
                let proto = s
                    .clients
                    .first()
                    .copied()
                    .unwrap_or_else(|| ClientLoad::constant(100.0, 100));
                s.clients = vec![proto; n];
            });
        }
        a
    }

    /// The per-client offered-load axis: sets every client's rate.
    pub fn rates_per_client(rates: &[f64]) -> Self {
        let mut a = Axis::new("rate");
        for &r in rates {
            a = a.value(format!("{r}"), move |s| {
                for c in &mut s.clients {
                    c.rate_per_sec = r;
                }
            });
        }
        a
    }

    /// The parallel world-worker axis (see [`Scenario::world_workers`]).
    pub fn world_workers(workers: &[usize]) -> Self {
        let mut a = Axis::new("world_workers");
        for &w in workers {
            a = a.value(w.to_string(), move |s| s.world_workers = w);
        }
        a
    }
}

/// One expanded grid point before execution.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Deterministic position in grid order (axes outermost-first,
    /// seeds innermost).
    pub index: usize,
    /// `(axis name, value label)` pairs, in axis order.
    pub labels: Vec<(String, String)>,
    /// The seed this replicate runs under.
    pub seed: u64,
    /// The fully patched scenario.
    pub scenario: Scenario,
}

impl GridCell {
    /// The label this point carries on `axis`, if that axis exists.
    pub fn label(&self, axis: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, v)| v.as_str())
    }
}

/// One executed grid point: the cell plus its [`Report`] and host wall
/// time.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// Deterministic position in grid order.
    pub index: usize,
    /// `(axis name, value label)` pairs, in axis order.
    pub labels: Vec<(String, String)>,
    /// The seed this replicate ran under.
    pub seed: u64,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The measurements.
    pub report: Report,
    /// Host wall time of this point (ms) — machine-dependent, excluded
    /// from determinism comparisons.
    pub wall_ms: f64,
}

impl GridPoint {
    /// The label this point carries on `axis`, if that axis exists.
    pub fn label(&self, axis: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, v)| v.as_str())
    }
}

/// The deterministic result of one grid execution: every point, in grid
/// order, regardless of how many worker threads ran it.
#[derive(Clone, Debug)]
pub struct GridReport {
    /// Executed points in grid order.
    pub points: Vec<GridPoint>,
}

impl GridReport {
    /// The points carrying `label` on `axis`, in grid order.
    pub fn points_where<'a>(
        &'a self,
        axis: &'a str,
        label: &'a str,
    ) -> impl Iterator<Item = &'a GridPoint> + 'a {
        self.points
            .iter()
            .filter(move |p| p.label(axis) == Some(label))
    }

    /// True when two executions produced the same points — same order,
    /// labels, seeds and measurement values (host wall time excluded).
    /// The worker-count determinism tests pin this.
    pub fn same_results(&self, other: &GridReport) -> bool {
        self.points.len() == other.points.len()
            && self.points.iter().zip(&other.points).all(|(a, b)| {
                a.index == b.index
                    && a.labels == b.labels
                    && a.seed == b.seed
                    && a.report == b.report
            })
    }
}

/// A declarative sweep: a base [`Scenario`], the [`Axis`] list to take
/// the cartesian product over, and the seed replication set.
///
/// Expansion order is deterministic — axes vary outermost-first in
/// declaration order, seeds innermost — and execution via
/// [`SweepGrid::run_with`] preserves it regardless of worker count.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    base: Scenario,
    axes: Vec<Axis>,
    seeds: Vec<u64>,
}

impl SweepGrid {
    /// A grid over `base` with no axes yet (a single point).
    pub fn new(base: Scenario) -> Self {
        SweepGrid {
            base,
            axes: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Appends a sweep axis (applied after all earlier axes).
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Replicates every point across these seeds (innermost dimension).
    /// Without this, each point runs once under the base scenario's
    /// seed.
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Number of points the grid expands to.
    pub fn len(&self) -> usize {
        self.axes.iter().map(Axis::len).product::<usize>() * self.seeds.len().max(1)
    }

    /// True when the grid expands to no points (some axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into validated cells in deterministic order.
    pub fn cells(&self) -> Result<Vec<GridCell>, ScenarioError> {
        let mut cells = vec![GridCell {
            index: 0,
            labels: Vec::new(),
            seed: self.base.knobs.seed,
            scenario: self.base.clone(),
        }];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(cells.len() * axis.values.len());
            for cell in &cells {
                for v in &axis.values {
                    let mut c = cell.clone();
                    (v.patch)(&mut c.scenario);
                    c.labels.push((axis.name.clone(), v.label.clone()));
                    next.push(c);
                }
            }
            cells = next;
        }
        if !self.seeds.is_empty() {
            let mut next = Vec::with_capacity(cells.len() * self.seeds.len());
            for cell in &cells {
                for &seed in &self.seeds {
                    let mut c = cell.clone();
                    c.scenario.knobs.seed = seed;
                    c.seed = seed;
                    next.push(c);
                }
            }
            cells = next;
        } else {
            // A patch may have rewritten the seed; keep the record true.
            for c in &mut cells {
                c.seed = c.scenario.knobs.seed;
            }
        }
        for (i, c) in cells.iter_mut().enumerate() {
            c.index = i;
            c.scenario
                .validate()
                .map_err(|e| ScenarioError::GridPoint {
                    index: i,
                    source: Box::new(e),
                })?;
        }
        Ok(cells)
    }

    /// Executes every point through `runner` on up to `workers` threads
    /// and returns the reports in grid order.
    ///
    /// `runner` is the kind-dispatching scenario executor (the umbrella
    /// crate's `sofbyz::scenario::run`, or [`Scenario::run_as`] pinned to
    /// one protocol). Results are index-stamped, so the report is
    /// identical for any worker count; `workers <= 1` runs inline on the
    /// calling thread.
    pub fn run_with<F>(&self, workers: usize, runner: F) -> Result<GridReport, ScenarioError>
    where
        F: Fn(&Scenario) -> Result<Report, ScenarioError> + Sync,
    {
        let cells = self.cells()?;
        let mut slots: Vec<Option<(Report, f64)>> = Vec::new();
        slots.resize_with(cells.len(), || None);
        let mut first_err: Option<(usize, ScenarioError)> = None;

        if workers <= 1 || cells.len() <= 1 {
            for (i, cell) in cells.iter().enumerate() {
                let t0 = Instant::now();
                match runner(&cell.scenario) {
                    Ok(report) => {
                        slots[i] = Some((report, t0.elapsed().as_secs_f64() * 1e3));
                    }
                    Err(e) => {
                        first_err = Some((i, e));
                        break;
                    }
                }
            }
        } else {
            let workers = workers.min(cells.len());
            let next = AtomicUsize::new(0);
            let cells_ref = &cells;
            let runner_ref = &runner;
            type PointResult = (usize, Result<(Report, f64), ScenarioError>);
            let (tx, rx) = crossbeam::channel::bounded::<PointResult>(cells.len());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells_ref.len() {
                            break;
                        }
                        let t0 = Instant::now();
                        let out = runner_ref(&cells_ref[i].scenario)
                            .map(|r| (r, t0.elapsed().as_secs_f64() * 1e3));
                        if tx.send((i, out)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                // A slow point must never look like a lost worker: keep
                // polling until every result arrived or every sender is
                // gone (a worker that panicked drops its sender; the
                // panic itself re-raises at scope join).
                let mut received = 0;
                while received < cells.len() {
                    use crossbeam::channel::RecvTimeoutError;
                    match rx.recv_timeout(std::time::Duration::from_secs(60)) {
                        Ok((i, Ok(pair))) => {
                            slots[i] = Some(pair);
                            received += 1;
                        }
                        Ok((i, Err(e))) => {
                            if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                                first_err = Some((i, e));
                            }
                            received += 1;
                        }
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            });
        }

        if let Some((index, e)) = first_err {
            return Err(ScenarioError::GridPoint {
                index,
                source: Box::new(e),
            });
        }
        let mut points = Vec::with_capacity(cells.len());
        for (cell, slot) in cells.into_iter().zip(slots) {
            let Some((report, wall_ms)) = slot else {
                return Err(ScenarioError::WorkerLost { index: cell.index });
            };
            points.push(GridPoint {
                index: cell.index,
                labels: cell.labels,
                seed: cell.seed,
                scenario: cell.scenario,
                report,
                wall_ms,
            });
        }
        Ok(GridReport { points })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(Scenario::new(ProtocolKind::Sc).validate(), Ok(()));
        assert_eq!(Scenario::bench(ProtocolKind::Bft).f(2).validate(), Ok(()));
    }

    #[test]
    fn zero_resilience_is_typed_not_a_panic() {
        for kind in ProtocolKind::ALL {
            let err = Scenario::new(kind).f(0).validate().unwrap_err();
            assert_eq!(err, ScenarioError::InvalidResilience { kind, f: 0 });
            assert!(err.to_string().contains("`f`"), "{err}");
        }
    }

    #[test]
    fn empty_window_is_rejected_naming_the_field() {
        let err = Scenario::new(ProtocolKind::Ct)
            .window(Window {
                warmup_s: 5,
                run_s: 5,
                drain_s: 0,
            })
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::EmptyWindow {
                warmup_s: 5,
                run_s: 5
            }
        );
        assert!(err.to_string().contains("`window`"), "{err}");
    }

    #[test]
    fn malformed_router_ranges_are_rejected() {
        let err = Scenario::new(ProtocolKind::Sc)
            .shards(2)
            .router(RouterPolicy::Ranges(vec![(0, 10), (12, u64::MAX)]))
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Router(RouterConfigError::OverlapOrGap { shard: 1 })
        );
        assert!(err.to_string().contains("`router`"), "{err}");
        // A wrong-arity (but well-formed) range set mismatches the world.
        let err = Scenario::new(ProtocolKind::Sc)
            .shards(3)
            .router(RouterPolicy::Ranges(vec![(0, 9), (10, u64::MAX)]))
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::RouterShardMismatch {
                router: 2,
                world: 3
            }
        );
    }

    #[test]
    fn inverted_fault_window_is_rejected() {
        let err = Scenario::new(ProtocolKind::Bft)
            .fault(ScenarioFault::mute_until(
                ProcessId(0),
                SimTime::from_secs(3),
                SimTime::from_secs(3),
            ))
            .validate()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::FaultWindow { fault: 0, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("faults[0]"), "{err}");
    }

    #[test]
    fn fault_targets_are_bounds_checked() {
        let err = Scenario::new(ProtocolKind::Ct)
            .fault(ScenarioFault::crash(ProcessId(0), SimTime::from_secs(1)).on_shard(2))
            .validate()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::FaultShard { shard: 2, .. }));
        // CT f=1 has n=3: process 3 is out of range.
        let err = Scenario::new(ProtocolKind::Ct)
            .fault(ScenarioFault::crash(ProcessId(3), SimTime::from_secs(1)))
            .validate()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::FaultProcess {
                process: ProcessId(3),
                n: 3,
                ..
            }
        ));
    }

    #[test]
    fn value_domain_faults_only_on_sc_variants() {
        for kind in [ProtocolKind::Bft, ProtocolKind::Ct] {
            let err = Scenario::new(kind)
                .fault(ScenarioFault::corrupt_order_at(ProcessId(0), SeqNo(4)))
                .validate()
                .unwrap_err();
            assert_eq!(err, ScenarioError::UnsupportedFault { fault: 0, kind });
        }
        assert_eq!(
            Scenario::new(ProtocolKind::Scr)
                .fault(ScenarioFault::corrupt_order_at(ProcessId(0), SeqNo(4)))
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn non_positive_client_rates_are_rejected() {
        for rate in [0.0, -2.0, f64::NAN] {
            let err = Scenario::new(ProtocolKind::Sc)
                .client(ClientLoad::constant(100.0, 100))
                .client(ClientLoad::constant(rate, 100))
                .validate()
                .unwrap_err();
            assert!(
                matches!(err, ScenarioError::ClientRate { client: 1, .. }),
                "{rate}: {err:?}"
            );
        }
    }

    #[test]
    fn kind_axis_keeps_variant_in_sync() {
        let grid =
            SweepGrid::new(Scenario::bench(ProtocolKind::Sc)).axis(Axis::kinds(&ProtocolKind::ALL));
        let cells = grid.cells().unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[1].scenario.kind, ProtocolKind::Scr);
        assert_eq!(cells[1].scenario.knobs.variant, Variant::Scr);
        assert_eq!(cells[1].label("kind"), Some("SCR"));
    }

    #[test]
    fn expansion_is_axis_major_with_seeds_innermost() {
        let grid = SweepGrid::new(Scenario::bench(ProtocolKind::Sc))
            .axis(Axis::intervals_ms(&[100, 200]))
            .axis(Axis::resiliences(&[1, 2]))
            .seeds(&[7, 8]);
        let cells = grid.cells().unwrap();
        assert_eq!(cells.len(), 8);
        assert_eq!(grid.len(), 8);
        let key = |c: &GridCell| {
            (
                c.label("interval_ms").unwrap().to_string(),
                c.label("f").unwrap().to_string(),
                c.seed,
            )
        };
        assert_eq!(key(&cells[0]), ("100".into(), "1".into(), 7));
        assert_eq!(key(&cells[1]), ("100".into(), "1".into(), 8));
        assert_eq!(key(&cells[2]), ("100".into(), "2".into(), 7));
        assert_eq!(key(&cells[4]), ("200".into(), "1".into(), 7));
        assert_eq!(cells[5].scenario.knobs.seed, 8);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn grid_expansion_surfaces_the_failing_point() {
        let grid =
            SweepGrid::new(Scenario::bench(ProtocolKind::Sc)).axis(Axis::resiliences(&[1, 0]));
        let err = grid.cells().unwrap_err();
        assert!(
            matches!(
                err,
                ScenarioError::GridPoint { index: 1, ref source }
                    if matches!(**source, ScenarioError::InvalidResilience { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn offered_requests_accounts_for_per_shard_load() {
        let flat = Scenario::bench(ProtocolKind::Sc); // 3 × 100 req/s × 14 s
        assert_eq!(flat.offered_requests(), 3.0 * 100.0 * 14.0);
        let sharded = Scenario::bench(ProtocolKind::Sc)
            .shards(4)
            .clients(2, ClientLoad::constant(50.0, 100).per_shard());
        assert_eq!(sharded.offered_requests(), 2.0 * 50.0 * 4.0 * 14.0);
    }
}
