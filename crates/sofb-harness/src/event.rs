//! Observations every hosted protocol emits for harnesses and tests.
//!
//! This is the *uniform* event vocabulary of the harness layer: SC/SCR,
//! BFT and CT all emit it, which is what lets one analysis module compute
//! every §5 measurement for every variant. Variants that lack a concept
//! (e.g. CT has no fail-signals) simply never emit those constructors.

use std::sync::Arc;

use sofb_proto::ids::{Rank, SeqNo, ViewId};
use sofb_proto::request::{Digest, RequestId};

/// An observable protocol milestone.
///
/// The experiment harness derives every §5 measurement from these:
/// order latency (batch `formed_at_ns` → first [`ProtocolEvent::Committed`]),
/// throughput (committed requests per process per second), fail-over
/// latency ([`ProtocolEvent::FailSignalIssued`] →
/// [`ProtocolEvent::StartCertIssued`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// An order was proposed by this coordinator replica.
    OrderProposed {
        /// Assigned sequence number.
        o: SeqNo,
        /// Number of requests in the batch.
        batch_len: usize,
        /// Batch formation instant (the latency origin) — lets the
        /// harness censor batches that never commit within the horizon.
        formed_at_ns: u64,
    },
    /// This process committed a sequence number (N3).
    Committed {
        /// Issuing candidate rank.
        c: Rank,
        /// Committed sequence number.
        o: SeqNo,
        /// Batch digest.
        digest: Digest,
        /// Number of member requests.
        requests: usize,
        /// The member request ids, in batch order (what an execution
        /// layer replays against its state machine). Shared with the
        /// committed batch reference, so emitting is a refcount bump.
        request_ids: Arc<[RequestId]>,
        /// Batch formation time (ns) carried in the order.
        formed_at_ns: u64,
    },
    /// This process emitted a doubly-signed fail-signal (§3.2).
    FailSignalIssued {
        /// The fail-signalling pair's rank.
        pair: Rank,
        /// True if due to a value-domain failure (vs. time-domain).
        value_domain: bool,
    },
    /// A new coordinator candidate issued its Start with the required
    /// `f+1` identifier-signature tuples (IN4 completion — the fail-over
    /// latency endpoint of §5).
    StartCertIssued {
        /// The installed rank.
        c: Rank,
        /// The Start's own sequence number.
        start_o: SeqNo,
    },
    /// This process considers the candidate installed (IN5).
    Installed {
        /// The installed rank.
        c: Rank,
    },
    /// SCR/BFT: this process moved to a new view.
    ViewChanged {
        /// The new view.
        v: ViewId,
    },
    /// SCR: a candidate pair declined a view (status not `up`).
    UnwillingSent {
        /// The declined view.
        v: ViewId,
    },
    /// SCR: this pair's operative status recovered to `up`.
    PairRecovered {
        /// The recovering pair's rank.
        pair: Rank,
    },
    /// A checkpoint stabilized (`n−f` agreeing votes); the order log was
    /// truncated below it.
    CheckpointStable {
        /// Last sequence number of the stable prefix.
        o: SeqNo,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable() {
        let a = ProtocolEvent::Installed { c: Rank(2) };
        assert_eq!(a, ProtocolEvent::Installed { c: Rank(2) });
        assert_ne!(a, ProtocolEvent::Installed { c: Rank(3) });
    }
}
