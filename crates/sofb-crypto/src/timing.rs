//! Calibrated virtual-time costs for cryptographic operations.
//!
//! The paper ran on 2.80 GHz Pentium IV machines under JDK 1.5. The
//! simulator charges each protocol step virtual CPU time according to this
//! model instead of executing 1024-bit modular exponentiations for every
//! simulated message. The *ratios* are what the paper's argument depends
//! on (§5, "Order Latency"):
//!
//! * signing time is similar between RSA and DSA of equal key size;
//! * RSA verification (e = 65537) is far cheaper than DSA verification
//!   (two full-width exponentiations);
//! * RSA-1536 signing is roughly `(1536/1024)^3 ≈ 3.4×` RSA-1024 signing;
//! * in an n-to-n exchange each process signs once but verifies `n−f`
//!   messages, so slow verification hurts BFT (3 such phases) more than SC.
//!
//! Magnitudes are taken from contemporaneous JCE measurements on P4-class
//! hardware; see `EXPERIMENTS.md` for the calibration notes.

use crate::scheme::SchemeId;

/// Virtual-time cost table for one scheme. All values in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchemeTiming {
    /// Cost of producing one signature.
    pub sign_ns: u64,
    /// Cost of verifying one signature.
    pub verify_ns: u64,
    /// Fixed cost of one digest computation.
    pub digest_base_ns: u64,
    /// Additional digest cost per input byte.
    pub digest_per_byte_ns: u64,
}

impl SchemeTiming {
    /// The calibrated table for `scheme` (2006-era P4 + JDK 1.5
    /// magnitudes: `java.math.BigInteger` modular exponentiation).
    ///
    /// These values make a 2.8 GHz P4 sign roughly 35 RSA-1024 messages
    /// per second — which is what puts the paper's SC saturation knee
    /// near a 40 ms batching interval and BFT's (two signings per batch
    /// per replica) at a larger interval.
    pub fn calibrated(scheme: SchemeId) -> Self {
        match scheme {
            SchemeId::Md5Rsa1024 => SchemeTiming {
                sign_ns: 28_000_000,  // 28 ms
                verify_ns: 1_300_000, // e = 65537 is cheap
                digest_base_ns: 15_000,
                digest_per_byte_ns: 5,
            },
            SchemeId::Md5Rsa1536 => SchemeTiming {
                sign_ns: 82_000_000, // ~(1536/1024)^3 ≈ 3x RSA-1024
                verify_ns: 2_600_000,
                digest_base_ns: 15_000,
                digest_per_byte_ns: 5,
            },
            SchemeId::Sha1Dsa1024 => SchemeTiming {
                sign_ns: 26_000_000,  // "time taken to sign ... is similar"
                verify_ns: 5_500_000, // two exponentiations; ≫ RSA verify
                digest_base_ns: 18_000,
                digest_per_byte_ns: 7,
            },
            SchemeId::Sha256Rsa2048 => SchemeTiming {
                sign_ns: 180_000_000,
                verify_ns: 4_500_000,
                digest_base_ns: 20_000,
                digest_per_byte_ns: 8,
            },
            SchemeId::NoCrypto => SchemeTiming {
                sign_ns: 0,
                verify_ns: 0,
                digest_base_ns: 0,
                digest_per_byte_ns: 0,
            },
        }
    }

    /// Cost of digesting `len` bytes.
    pub fn digest_cost(&self, len: usize) -> u64 {
        if self.digest_base_ns == 0 && self.digest_per_byte_ns == 0 {
            return 0;
        }
        self.digest_base_ns + self.digest_per_byte_ns * len as u64
    }

    /// Cost of signing a message of `len` bytes (digest + private-key op).
    pub fn sign_cost(&self, len: usize) -> u64 {
        self.sign_ns + self.digest_cost(len)
    }

    /// Cost of verifying a signature over `len` bytes.
    pub fn verify_cost(&self, len: usize) -> u64 {
        self.verify_ns + self.digest_cost(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios_hold() {
        let rsa1024 = SchemeTiming::calibrated(SchemeId::Md5Rsa1024);
        let rsa1536 = SchemeTiming::calibrated(SchemeId::Md5Rsa1536);
        let dsa = SchemeTiming::calibrated(SchemeId::Sha1Dsa1024);

        // Sign times similar between RSA-1024 and DSA-1024 (§5).
        let ratio = rsa1024.sign_ns as f64 / dsa.sign_ns as f64;
        assert!((0.5..2.0).contains(&ratio), "sign ratio {ratio}");

        // RSA verify much faster than DSA verify (§5).
        assert!(dsa.verify_ns > 4 * rsa1024.verify_ns);

        // Bigger RSA keys cost more.
        assert!(rsa1536.sign_ns > 2 * rsa1024.sign_ns);
        assert!(rsa1536.verify_ns > rsa1024.verify_ns);
    }

    #[test]
    fn nocrypto_is_free() {
        let t = SchemeTiming::calibrated(SchemeId::NoCrypto);
        assert_eq!(t.sign_cost(10_000), 0);
        assert_eq!(t.verify_cost(10_000), 0);
        assert_eq!(t.digest_cost(10_000), 0);
    }

    #[test]
    fn costs_scale_with_length() {
        let t = SchemeTiming::calibrated(SchemeId::Md5Rsa1024);
        assert!(t.digest_cost(10_000) > t.digest_cost(100));
        assert!(t.sign_cost(1_000) > t.sign_ns);
        assert!(t.verify_cost(1_000) > t.verify_ns);
    }
}
