//! The digest/signature scheme combinations evaluated by the paper.

use crate::digest::DigestAlg;

/// Signature algorithm family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SigAlg {
    /// RSA with EMSA-PKCS1-v1_5-style padding.
    Rsa,
    /// DSA over a prime-order subgroup.
    Dsa,
    /// No public-key signatures (the CT baseline uses none).
    None,
}

/// One of the crypto-technique combinations from the paper's §5, plus two
/// extensions (`NoCrypto` for the CT baseline, `Sha256Rsa2048` as a modern
/// point for the extended sweeps).
///
/// # Examples
///
/// ```
/// use sofb_crypto::scheme::SchemeId;
///
/// assert_eq!(SchemeId::Md5Rsa1024.key_bits(), 1024);
/// assert_eq!(SchemeId::PAPER.len(), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeId {
    /// MD5 digests, RSA-1024 signatures (Figure 4a/5a).
    Md5Rsa1024,
    /// MD5 digests, RSA-1536 signatures (Figure 4b/5b).
    Md5Rsa1536,
    /// SHA-1 digests, DSA-1024 signatures (Figure 4c/5c).
    Sha1Dsa1024,
    /// SHA-256 digests, RSA-2048 signatures (extension).
    Sha256Rsa2048,
    /// No digests or signatures (the crash-tolerant baseline).
    NoCrypto,
}

impl SchemeId {
    /// The three combinations measured in the paper, in figure order.
    pub const PAPER: [SchemeId; 3] = [
        SchemeId::Md5Rsa1024,
        SchemeId::Md5Rsa1536,
        SchemeId::Sha1Dsa1024,
    ];

    /// The digest algorithm of the combination.
    pub fn digest_alg(self) -> DigestAlg {
        match self {
            SchemeId::Md5Rsa1024 | SchemeId::Md5Rsa1536 => DigestAlg::Md5,
            SchemeId::Sha1Dsa1024 => DigestAlg::Sha1,
            SchemeId::Sha256Rsa2048 | SchemeId::NoCrypto => DigestAlg::Sha256,
        }
    }

    /// The signature algorithm of the combination.
    pub fn sig_alg(self) -> SigAlg {
        match self {
            SchemeId::Md5Rsa1024 | SchemeId::Md5Rsa1536 | SchemeId::Sha256Rsa2048 => SigAlg::Rsa,
            SchemeId::Sha1Dsa1024 => SigAlg::Dsa,
            SchemeId::NoCrypto => SigAlg::None,
        }
    }

    /// Nominal public-key size in bits.
    pub fn key_bits(self) -> usize {
        match self {
            SchemeId::Md5Rsa1024 | SchemeId::Sha1Dsa1024 => 1024,
            SchemeId::Md5Rsa1536 => 1536,
            SchemeId::Sha256Rsa2048 => 2048,
            SchemeId::NoCrypto => 0,
        }
    }

    /// Byte length of signatures produced under this combination (used by
    /// the simulated provider so that message sizes stay realistic).
    pub fn signature_len(self) -> usize {
        match self {
            SchemeId::Md5Rsa1024 => 128,
            SchemeId::Md5Rsa1536 => 192,
            // DSA(1024, 160): two 20-byte integers with 2-byte lengths.
            SchemeId::Sha1Dsa1024 => 44,
            SchemeId::Sha256Rsa2048 => 256,
            SchemeId::NoCrypto => 0,
        }
    }
}

impl std::fmt::Display for SchemeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeId::Md5Rsa1024 => write!(f, "MD5+RSA-1024"),
            SchemeId::Md5Rsa1536 => write!(f, "MD5+RSA-1536"),
            SchemeId::Sha1Dsa1024 => write!(f, "SHA1+DSA-1024"),
            SchemeId::Sha256Rsa2048 => write!(f, "SHA256+RSA-2048"),
            SchemeId::NoCrypto => write!(f, "no-crypto"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schemes_match_figures() {
        assert_eq!(SchemeId::PAPER[0].digest_alg(), DigestAlg::Md5);
        assert_eq!(SchemeId::PAPER[0].sig_alg(), SigAlg::Rsa);
        assert_eq!(SchemeId::PAPER[1].key_bits(), 1536);
        assert_eq!(SchemeId::PAPER[2].digest_alg(), DigestAlg::Sha1);
        assert_eq!(SchemeId::PAPER[2].sig_alg(), SigAlg::Dsa);
    }

    #[test]
    fn signature_lengths_positive_except_nocrypto() {
        for s in SchemeId::PAPER {
            assert!(s.signature_len() > 0);
        }
        assert_eq!(SchemeId::NoCrypto.signature_len(), 0);
        assert_eq!(SchemeId::NoCrypto.sig_alg(), SigAlg::None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(SchemeId::Md5Rsa1024.to_string(), "MD5+RSA-1024");
        assert_eq!(SchemeId::Sha1Dsa1024.to_string(), "SHA1+DSA-1024");
    }
}
