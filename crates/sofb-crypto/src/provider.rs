//! The `CryptoProvider` abstraction injected into every protocol process.
//!
//! Protocols never call RSA/DSA directly; they sign, verify and digest
//! through a provider handed out by the [`Dealer`] (the paper's Assumption 2
//! "trusted dealer initializes the system and the nodes with cryptographic
//! keys and hash functions").
//!
//! Two implementations exist:
//!
//! * [`RealProvider`] — genuine RSA/DSA signatures from this crate's
//!   from-scratch implementations. Used in integration tests and examples
//!   (with reduced key sizes so debug builds stay fast).
//! * [`SimProvider`] — authenticated tags (a fast keyed tag oracle) with
//!   *virtual-time cost accounting* from the calibrated
//!   [`crate::timing::SchemeTiming`] table. Used by the
//!   discrete-event simulator that regenerates the paper's figures.
//!
//! Both enforce the paper's "cryptography-constrained Byzantine" model: a
//! faulty process cannot forge another process' signature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dsa::{DsaKeyPair, DsaParams, DsaPublicKey};
use crate::rsa::{RsaKeyPair, RsaPublicKey};
use crate::scheme::{SchemeId, SigAlg};
use crate::sha256::Sha256;
use crate::timing::SchemeTiming;

/// Signing/verification service for one protocol process.
///
/// Implementations accrue virtual CPU cost for each operation;
/// [`CryptoProvider::take_cost_ns`] drains the accumulator (the simulator
/// calls it after every protocol step to advance that node's CPU clock).
pub trait CryptoProvider: Send {
    /// The digest/signature combination in force.
    fn scheme(&self) -> SchemeId;

    /// The process id this provider signs as.
    fn my_id(&self) -> u32;

    /// Signs `message` with this process' private key.
    fn sign(&mut self, message: &[u8]) -> Vec<u8>;

    /// Signs `message` into `out` (cleared first). Hot-path variant for
    /// callers that recycle signature storage; the default delegates to
    /// [`CryptoProvider::sign`], implementations that can fill a caller
    /// buffer without allocating should override it.
    fn sign_into(&mut self, message: &[u8], out: &mut Vec<u8>) {
        let sig = self.sign(message);
        out.clear();
        out.extend_from_slice(&sig);
    }

    /// Verifies that `sig` is `signer`'s signature over `message`.
    fn verify(&mut self, signer: u32, message: &[u8], sig: &[u8]) -> bool;

    /// Digests `message` under the scheme's digest algorithm.
    fn digest(&mut self, message: &[u8]) -> Vec<u8>;

    /// Computes a pairwise MAC tag over `message` for the channel between
    /// this process and `peer` (Assumption 2's message authentication
    /// codes — used on the fast intra-pair link, where public-key
    /// signatures would be needless overhead).
    fn mac(&mut self, peer: u32, message: &[u8]) -> Vec<u8>;

    /// Verifies a pairwise MAC tag from `peer`.
    fn verify_mac(&mut self, peer: u32, message: &[u8], tag: &[u8]) -> bool;

    /// Drains the virtual CPU nanoseconds accrued since the last call.
    fn take_cost_ns(&mut self) -> u64;
}

/// Derives the symmetric pairwise MAC key for `(a, b)` from a dealer
/// master secret (order-independent).
fn pair_key(master: u64, a: u32, b: u32) -> Vec<u8> {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut h = Sha256::new();
    h.update(b"pair-mac-key");
    h.update(&master.to_le_bytes());
    h.update(&lo.to_le_bytes());
    h.update(&hi.to_le_bytes());
    h.finalize().to_vec()
}

/// Private key material for one process.
#[derive(Clone, Debug)]
enum KeyMaterial {
    Rsa(RsaKeyPair),
    Dsa(DsaKeyPair),
    None,
}

/// Public key material for one process.
#[derive(Clone, Debug)]
enum PublicMaterial {
    Rsa(RsaPublicKey),
    Dsa(DsaPublicKey),
    None,
}

/// A provider backed by genuine RSA/DSA signatures.
pub struct RealProvider {
    scheme: SchemeId,
    id: u32,
    key: KeyMaterial,
    publics: Vec<PublicMaterial>,
    rng: StdRng,
    cost_ns: u64,
    timing: SchemeTiming,
    mac_master: u64,
}

impl std::fmt::Debug for RealProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealProvider")
            .field("scheme", &self.scheme)
            .field("id", &self.id)
            .field("n", &self.publics.len())
            .finish()
    }
}

impl CryptoProvider for RealProvider {
    fn scheme(&self) -> SchemeId {
        self.scheme
    }

    fn my_id(&self) -> u32 {
        self.id
    }

    fn sign(&mut self, message: &[u8]) -> Vec<u8> {
        self.cost_ns += self.timing.sign_cost(message.len());
        let alg = self.scheme.digest_alg();
        match &self.key {
            KeyMaterial::Rsa(kp) => kp.sign(alg, message),
            KeyMaterial::Dsa(kp) => kp.sign(&mut self.rng, alg, message),
            KeyMaterial::None => Vec::new(),
        }
    }

    fn verify(&mut self, signer: u32, message: &[u8], sig: &[u8]) -> bool {
        self.cost_ns += self.timing.verify_cost(message.len());
        let alg = self.scheme.digest_alg();
        match self.publics.get(signer as usize) {
            Some(PublicMaterial::Rsa(pk)) => pk.verify(alg, message, sig),
            Some(PublicMaterial::Dsa(pk)) => pk.verify(alg, message, sig),
            Some(PublicMaterial::None) => sig.is_empty(),
            None => false,
        }
    }

    fn digest(&mut self, message: &[u8]) -> Vec<u8> {
        self.cost_ns += self.timing.digest_cost(message.len());
        self.scheme.digest_alg().digest(message)
    }

    fn mac(&mut self, peer: u32, message: &[u8]) -> Vec<u8> {
        self.cost_ns += 2 * self.timing.digest_cost(message.len()).max(1_000);
        let key = pair_key(self.mac_master, self.id, peer);
        crate::hmac::hmac(crate::digest::DigestAlg::Sha256, &key, message)
    }

    fn verify_mac(&mut self, peer: u32, message: &[u8], tag: &[u8]) -> bool {
        self.cost_ns += 2 * self.timing.digest_cost(message.len()).max(1_000);
        let key = pair_key(self.mac_master, self.id, peer);
        let expected = crate::hmac::hmac(crate::digest::DigestAlg::Sha256, &key, message);
        crate::hmac::verify_tag(&expected, tag)
    }

    fn take_cost_ns(&mut self) -> u64 {
        std::mem::take(&mut self.cost_ns)
    }
}

/// A provider that issues authenticated tags and charges calibrated
/// virtual-time costs. The tag is a keyed digest bound to the signer id, so
/// forgery by other (simulated) processes fails verification, preserving
/// the crypto-constrained Byzantine model inside the simulator.
pub struct SimProvider {
    scheme: SchemeId,
    id: u32,
    master: u64,
    timing: SchemeTiming,
    cost_ns: u64,
}

impl std::fmt::Debug for SimProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimProvider")
            .field("scheme", &self.scheme)
            .field("id", &self.id)
            .finish()
    }
}

impl SimProvider {
    /// Creates a provider for process `id` under a dealer master secret.
    pub fn new(scheme: SchemeId, id: u32, master: u64) -> Self {
        SimProvider {
            scheme,
            id,
            master,
            timing: SchemeTiming::calibrated(scheme),
            cost_ns: 0,
        }
    }

    /// Overrides the timing table (for sensitivity experiments).
    pub fn with_timing(mut self, timing: SchemeTiming) -> Self {
        self.timing = timing;
        self
    }

    fn tag(&self, signer: u32, message: &[u8]) -> Vec<u8> {
        let sig_len = self.scheme.signature_len();
        if sig_len == 0 {
            return Vec::new();
        }
        oracle_tag(
            self.master ^ TAG_DOMAIN,
            u64::from(signer),
            message,
            sig_len,
        )
    }

    /// The symmetric per-pair tag behind `mac`/`verify_mac` (cost is
    /// accrued by the callers).
    fn pair_tag(&self, peer: u32, message: &[u8]) -> Vec<u8> {
        let (lo, hi) = if self.id <= peer {
            (self.id, peer)
        } else {
            (peer, self.id)
        };
        let pair = (u64::from(lo) << 32) | u64::from(hi);
        oracle_tag(self.master ^ MAC_DOMAIN, pair, message, SIM_MAC_LEN)
    }
}

/// Domain separators keeping signature tags and pairwise MAC tags from
/// colliding under one master secret.
const TAG_DOMAIN: u64 = 0x7369_675f_7461_675f; // "sig_tag_"
const MAC_DOMAIN: u64 = 0x6d61_635f_7461_675f; // "mac_tag_"

/// Simulated MAC tags share the fixed HMAC-SHA-256 output width so wire
/// sizes (and therefore simulated marshalling and link costs) match the
/// real provider byte for byte.
const SIM_MAC_LEN: usize = 32;

/// The keyed tag oracle of the simulated provider: a multiply-xor mix
/// over `(key, message)` expanded to `len` bytes.
///
/// Tags only ever flow back into [`CryptoProvider::verify`]-style
/// equality checks inside the simulation; no actor reads the dealer
/// secret, so unforgeability holds by construction and cryptographic
/// strength would buy nothing. This used to be SHA-256 and was the
/// single largest *host*-CPU cost of a benchmark run — virtual crypto
/// cost is billed separately through [`SchemeTiming`], and a simulated
/// operation should not also cost real compression rounds.
fn oracle_tag(key: u64, signer: u64, message: &[u8], len: usize) -> Vec<u8> {
    let mut out = vec![0u8; len];
    oracle_tag_into(key, signer, message, &mut out);
    out
}

/// [`oracle_tag`] writing into a caller-provided buffer — the
/// verification hot path compares against a stack buffer instead of
/// allocating an expected tag per check.
fn oracle_tag_into(key: u64, signer: u64, message: &[u8], out: &mut [u8]) {
    const M: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut h = key ^ signer.rotate_left(17).wrapping_mul(M);
    let mut chunks = message.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().unwrap()))
            .rotate_left(23)
            .wrapping_mul(M);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(buf))
            .rotate_left(23)
            .wrapping_mul(M);
    }
    h ^= message.len() as u64;
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        let mut x = h ^ (i as u64).wrapping_mul(M);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 29;
        let bytes = x.to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
}

/// Largest simulated signature/tag ([`SchemeId::Sha256Rsa2048`]): lets
/// verification build the expected tag on the stack.
const MAX_SIM_SIG: usize = 256;

impl CryptoProvider for SimProvider {
    fn scheme(&self) -> SchemeId {
        self.scheme
    }

    fn my_id(&self) -> u32 {
        self.id
    }

    fn sign(&mut self, message: &[u8]) -> Vec<u8> {
        self.cost_ns += self.timing.sign_cost(message.len());
        self.tag(self.id, message)
    }

    fn sign_into(&mut self, message: &[u8], out: &mut Vec<u8>) {
        self.cost_ns += self.timing.sign_cost(message.len());
        let sig_len = self.scheme.signature_len();
        out.clear();
        out.resize(sig_len, 0);
        if sig_len > 0 {
            oracle_tag_into(self.master ^ TAG_DOMAIN, u64::from(self.id), message, out);
        }
    }

    fn verify(&mut self, signer: u32, message: &[u8], sig: &[u8]) -> bool {
        self.cost_ns += self.timing.verify_cost(message.len());
        let sig_len = self.scheme.signature_len();
        if sig.len() != sig_len {
            return false;
        }
        if sig_len == 0 {
            return true;
        }
        debug_assert!(sig_len <= MAX_SIM_SIG);
        let mut expected = [0u8; MAX_SIM_SIG];
        oracle_tag_into(
            self.master ^ TAG_DOMAIN,
            u64::from(signer),
            message,
            &mut expected[..sig_len],
        );
        expected[..sig_len] == *sig
    }

    fn digest(&mut self, message: &[u8]) -> Vec<u8> {
        self.cost_ns += self.timing.digest_cost(message.len());
        self.scheme.digest_alg().digest(message)
    }

    fn mac(&mut self, peer: u32, message: &[u8]) -> Vec<u8> {
        self.cost_ns += 2 * self.timing.digest_cost(message.len()).max(1_000);
        self.pair_tag(peer, message)
    }

    fn verify_mac(&mut self, peer: u32, message: &[u8], tag: &[u8]) -> bool {
        self.cost_ns += 2 * self.timing.digest_cost(message.len()).max(1_000);
        if tag.len() != SIM_MAC_LEN {
            return false;
        }
        let (lo, hi) = if self.id <= peer {
            (self.id, peer)
        } else {
            (peer, self.id)
        };
        let pair = (u64::from(lo) << 32) | u64::from(hi);
        let mut expected = [0u8; SIM_MAC_LEN];
        oracle_tag_into(self.master ^ MAC_DOMAIN, pair, message, &mut expected);
        expected[..] == *tag
    }

    fn take_cost_ns(&mut self) -> u64 {
        std::mem::take(&mut self.cost_ns)
    }
}

/// The trusted dealer of Assumption 2: generates and distributes keys.
#[derive(Debug)]
pub struct Dealer;

impl Dealer {
    /// Hands out simulated providers for `n` processes.
    pub fn sim(scheme: SchemeId, n: usize, master: u64) -> Vec<SimProvider> {
        (0..n as u32)
            .map(|i| SimProvider::new(scheme, i, master))
            .collect()
    }

    /// Hands out real-crypto providers for `n` processes.
    ///
    /// `key_bits` overrides the scheme's nominal key size — tests use
    /// small keys (e.g. 512) so that debug builds stay fast. DSA keys share
    /// one set of domain parameters, as a real deployment would.
    pub fn real<R: Rng + ?Sized>(
        rng: &mut R,
        scheme: SchemeId,
        n: usize,
        key_bits: Option<usize>,
    ) -> Vec<RealProvider> {
        let bits = key_bits.unwrap_or_else(|| scheme.key_bits().max(128));
        let mut keys: Vec<KeyMaterial> = Vec::with_capacity(n);
        match scheme.sig_alg() {
            SigAlg::Rsa => {
                for _ in 0..n {
                    keys.push(KeyMaterial::Rsa(RsaKeyPair::generate(rng, bits)));
                }
            }
            SigAlg::Dsa => {
                let q_bits = 160.min(bits - 16);
                let params = DsaParams::generate(rng, bits, q_bits);
                for _ in 0..n {
                    keys.push(KeyMaterial::Dsa(DsaKeyPair::generate(rng, params.clone())));
                }
            }
            SigAlg::None => {
                for _ in 0..n {
                    keys.push(KeyMaterial::None);
                }
            }
        }
        let publics: Vec<PublicMaterial> = keys
            .iter()
            .map(|k| match k {
                KeyMaterial::Rsa(kp) => PublicMaterial::Rsa(kp.public().clone()),
                KeyMaterial::Dsa(kp) => PublicMaterial::Dsa(kp.public().clone()),
                KeyMaterial::None => PublicMaterial::None,
            })
            .collect();
        let timing = SchemeTiming::calibrated(scheme);
        let mac_master: u64 = rng.gen();
        keys.into_iter()
            .enumerate()
            .map(|(i, key)| RealProvider {
                scheme,
                id: i as u32,
                key,
                publics: publics.clone(),
                rng: StdRng::seed_from_u64(0x9e3779b97f4a7c15 ^ i as u64),
                cost_ns: 0,
                timing,
                mac_master,
            })
            .collect()
    }
}

/// Convenience: the digest algorithm's output as a fixed hex string, used
/// in log/debug output across the workspace.
pub fn short_hex(bytes: &[u8]) -> String {
    bytes.iter().take(6).map(|b| format!("{b:02x}")).collect()
}

/// Digests with the scheme's algorithm without a provider (for clients and
/// test assertions that do not participate in cost accounting).
pub fn digest_with(scheme: SchemeId, data: &[u8]) -> Vec<u8> {
    scheme.digest_alg().digest(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_provider_roundtrip() {
        let mut provs = Dealer::sim(SchemeId::Md5Rsa1024, 3, 42);
        let sig = provs[0].sign(b"hello");
        assert_eq!(sig.len(), SchemeId::Md5Rsa1024.signature_len());
        assert!(provs[1].verify(0, b"hello", &sig));
        assert!(!provs[1].verify(0, b"hellx", &sig));
        // Signer binding: the same message signed "as" process 1 differs.
        assert!(!provs[1].verify(1, b"hello", &sig));
    }

    #[test]
    fn sim_provider_cannot_forge() {
        let mut provs = Dealer::sim(SchemeId::Sha1Dsa1024, 2, 7);
        // Process 1 (Byzantine) signs with its own provider but claims the
        // signature is from process 0: verification fails.
        let forged = provs[1].sign(b"evil");
        assert!(!provs[0].verify(0, b"evil", &forged));
        assert!(provs[0].verify(1, b"evil", &forged));
    }

    #[test]
    fn sim_provider_accrues_cost() {
        let mut p = SimProvider::new(SchemeId::Md5Rsa1024, 0, 1);
        assert_eq!(p.take_cost_ns(), 0);
        let sig = p.sign(b"msg");
        let sign_cost = p.take_cost_ns();
        assert!(sign_cost >= 5_000_000);
        p.verify(0, b"msg", &sig);
        let verify_cost = p.take_cost_ns();
        assert!(verify_cost < sign_cost, "RSA verify should be cheaper");
        assert_eq!(p.take_cost_ns(), 0, "drained");
    }

    #[test]
    fn sim_nocrypto_is_free_and_trivially_valid() {
        let mut p = SimProvider::new(SchemeId::NoCrypto, 0, 1);
        let sig = p.sign(b"anything");
        assert!(sig.is_empty());
        assert!(p.verify(0, b"anything", &sig));
        assert_eq!(p.take_cost_ns(), 0);
    }

    #[test]
    fn real_provider_rsa_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut provs = Dealer::real(&mut rng, SchemeId::Md5Rsa1024, 2, Some(512));
        let sig = provs[0].sign(b"order 7");
        assert!(provs[1].verify(0, b"order 7", &sig));
        assert!(!provs[1].verify(1, b"order 7", &sig));
        assert!(!provs[1].verify(0, b"order 8", &sig));
        assert!(provs[0].take_cost_ns() > 0);
    }

    #[test]
    fn real_provider_dsa_roundtrip() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut provs = Dealer::real(&mut rng, SchemeId::Sha1Dsa1024, 2, Some(256));
        let sig = provs[1].sign(b"order 9");
        assert!(provs[0].verify(1, b"order 9", &sig));
        assert!(!provs[0].verify(0, b"order 9", &sig));
    }

    #[test]
    fn real_provider_unknown_signer() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut provs = Dealer::real(&mut rng, SchemeId::Md5Rsa1024, 1, Some(512));
        let sig = provs[0].sign(b"m");
        assert!(!provs[0].verify(99, b"m", &sig));
    }

    #[test]
    fn digest_matches_scheme() {
        let mut p = SimProvider::new(SchemeId::Sha1Dsa1024, 0, 1);
        assert_eq!(p.digest(b"x").len(), 20);
        let mut p = SimProvider::new(SchemeId::Md5Rsa1024, 0, 1);
        assert_eq!(p.digest(b"x").len(), 16);
        assert_eq!(digest_with(SchemeId::Md5Rsa1024, b"x"), p.digest(b"x"));
    }
}
