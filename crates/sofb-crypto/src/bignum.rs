//! Arbitrary-precision unsigned integers on `u64` limbs.
//!
//! This module provides exactly the arithmetic needed by the RSA and DSA
//! implementations in this crate: comparison, addition, subtraction,
//! multiplication, division with remainder (Knuth Algorithm D), modular
//! exponentiation, modular inverse, and Miller–Rabin primality testing.
//!
//! Limbs are stored little-endian (least significant limb first) and every
//! value is kept *normalized*: no trailing zero limbs, and zero is the empty
//! limb vector.
//!
//! # Examples
//!
//! ```
//! use sofb_crypto::bignum::BigUint;
//!
//! let a = BigUint::from_u64(1 << 40);
//! let b = BigUint::from_u64(12345);
//! let c = a.mul(&b).add(&b);
//! assert_eq!(c.rem(&a), b);
//! ```

use std::cmp::Ordering;
use std::fmt;

use rand::Rng;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; normalized (no trailing zeros).
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_start = bytes.len();
        while chunk_start > 0 {
            let lo = chunk_start.saturating_sub(8);
            let mut limb: u64 = 0;
            for &b in &bytes[lo..chunk_start] {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
            chunk_start = lo;
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Hex string (no leading zeros, lowercase; "0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Parses a (lowercase or uppercase) hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim_start_matches("0x");
        if s.is_empty() || !s.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        // Convert to bytes, big-endian.
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut i = 0;
        if chars.len() % 2 == 1 {
            bytes.push(hex_val(chars[0])?);
            i = 1;
        }
        while i < chars.len() {
            bytes.push(hex_val(chars[i])? << 4 | hex_val(chars[i + 1])?);
            i += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the low bit is clear (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of limbs (u64 words) in the normalized representation.
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// The value truncated to its low `n` limbs (i.e. `self mod 2^(64n)`).
    pub fn low_limbs(&self, n: usize) -> Self {
        let mut r = BigUint {
            limbs: self.limbs.iter().take(n).copied().collect(),
        };
        r.normalize();
        r
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (false beyond the most significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Interprets the low 64 bits as a `u64` (the whole value must fit).
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds `u64::MAX`.
    pub fn to_u64(&self) -> u64 {
        assert!(self.limbs.len() <= 1, "value exceeds u64");
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Sum of `self` and `other`.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "bignum subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Product of `self` and `other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> Self {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Quotient and remainder of `self / divisor` (Knuth Algorithm D).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Self::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem: u128 = 0;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | u128::from(l);
                q.push((cur / u128::from(d)) as u64);
                rem = cur % u128::from(d);
            }
            q.reverse();
            let mut quo = BigUint { limbs: q };
            quo.normalize();
            return (quo, BigUint::from_u64(rem as u64));
        }

        // Normalize so the top limb of the divisor has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_hi = vn[n - 1];
        let v_lo = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top two/three limbs.
            let num = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
            let mut qhat = num / u128::from(v_hi);
            let mut rhat = num % u128::from(v_hi);
            while qhat >> 64 != 0
                || qhat * u128::from(v_lo) > ((rhat << 64) | u128::from(un[j + n - 2]))
            {
                qhat -= 1;
                rhat += u128::from(v_hi);
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * u128::from(vn[i]) + carry;
                carry = p >> 64;
                let sub = i128::from(un[j + i]) - i128::from(p as u64) + borrow;
                un[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = i128::from(un[j + n]) - i128::from(carry as u64) + borrow;
            un[j + n] = sub as u64;
            borrow = sub >> 64;

            let mut qdigit = qhat as u64;
            if borrow != 0 {
                // Estimate was one too large; add the divisor back.
                qdigit -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s1, c1) = un[j + i].overflowing_add(vn[i]);
                    let (s2, c2) = s1.overflowing_add(carry);
                    un[j + i] = s2;
                    carry = u64::from(c1) + u64::from(c2);
                }
                un[j + n] = un[j + n].wrapping_add(carry);
            }
            q[j] = qdigit;
        }

        let mut quo = BigUint { limbs: q };
        quo.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quo, rem.shr(shift))
    }

    /// Remainder of `self / divisor`.
    pub fn rem(&self, divisor: &Self) -> Self {
        self.div_rem(divisor).1
    }

    /// `self * other mod m`.
    pub fn mul_mod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// `self ^ exp mod m` via left-to-right square-and-multiply, with
    /// Barrett reduction for multi-limb moduli (see
    /// [`crate::barrett::Barrett`]).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return Self::zero();
        }
        let base = self.rem(m);
        if exp.is_zero() {
            return Self::one();
        }
        if m.limb_len() >= 3 {
            let ctx = crate::barrett::Barrett::new(m);
            let mut acc = Self::one();
            for i in (0..exp.bit_len()).rev() {
                acc = ctx.mul_mod(&acc, &acc);
                if exp.bit(i) {
                    acc = ctx.mul_mod(&acc, &base);
                }
            }
            return acc;
        }
        let mut acc = Self::one();
        for i in (0..exp.bit_len()).rev() {
            acc = acc.mul_mod(&acc, m);
            if exp.bit(i) {
                acc = acc.mul_mod(&base, m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary-free Euclid).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` mod `m`, if it exists.
    ///
    /// Uses the extended Euclidean algorithm with signed cofactors.
    pub fn mod_inv(&self, m: &Self) -> Option<Self> {
        if m.is_zero() {
            return None;
        }
        // Maintain r pairs and the x cofactor as (magnitude, negative?) pairs.
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut x0 = (Self::zero(), false);
        let mut x1 = (Self::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // x2 = x0 - q * x1 in signed arithmetic.
            let qx1 = q.mul(&x1.0);
            let x2 = signed_sub(&x0, &(qx1, x1.1));
            r0 = r1;
            r1 = r2;
            x0 = x1;
            x1 = x2;
        }
        if !r0.is_one() {
            return None;
        }
        // x0 is the inverse, possibly negative.
        let inv = if x0.1 {
            m.sub(&x0.0.rem(m))
        } else {
            x0.0.rem(m)
        };
        Some(inv.rem(m))
    }

    /// Uniform random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bit_len();
        loop {
            let candidate = Self::random_bits(rng, bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Random value with at most `bits` bits.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        let n_limbs = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..n_limbs).map(|_| rng.gen()).collect();
        let extra = n_limbs * 64 - bits;
        if extra > 0 {
            if let Some(top) = limbs.last_mut() {
                *top >>= extra;
            }
        }
        let mut r = BigUint { limbs };
        r.normalize();
        r
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        if self.is_zero() || self.is_one() {
            return false;
        }
        // Trial division by small primes.
        for &p in SMALL_PRIMES {
            let pb = Self::from_u64(p);
            if self == &pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // Write self - 1 = d * 2^s.
        let one = Self::one();
        let two = Self::from_u64(2);
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        'witness: for _ in 0..rounds {
            let a = Self::random_below(rng, &n_minus_1.sub(&two)).add(&two);
            let mut x = a.mod_pow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..s - 1 {
                x = x.mul_mod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random probable prime with exactly `bits` bits.
    pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 8, "prime too small");
        loop {
            let mut candidate = Self::random_bits(rng, bits);
            // Force the top and bottom bits.
            let top = Self::one().shl(bits - 1);
            candidate = candidate.add(&top).rem(&Self::one().shl(bits));
            if candidate.bit_len() < bits {
                candidate = candidate.add(&top);
            }
            if candidate.is_even() {
                candidate = candidate.add(&Self::one());
            }
            if candidate.is_probable_prime(rng, 20) {
                return candidate;
            }
        }
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Signed subtraction on (magnitude, negative?) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both nonnegative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

const SMALL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint {
            limbs: {
                let mut l = vec![v as u64, (v >> 64) as u64];
                while l.last() == Some(&0) {
                    l.pop();
                }
                l
            },
        }
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn roundtrip_bytes() {
        let v = BigUint::from_hex("0123456789abcdef0011223344556677").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        // Leading zeros in input are dropped.
        let mut padded = vec![0u8, 0u8];
        padded.extend_from_slice(&bytes);
        assert_eq!(BigUint::from_bytes_be(&padded), v);
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from_u64(0xabcd);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0xab, 0xcd]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small() {
        BigUint::from_u64(0xabcdef).to_bytes_be_padded(2);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = big(u128::MAX - 5);
        let b = big(123456789);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = big(u128::MAX);
        let s = a.add(&BigUint::one());
        assert_eq!(s.bit_len(), 129);
        assert_eq!(s.sub(&BigUint::one()), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::from_u64(1).sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0x1234_5678_9abc_def0u64;
        let b = 0xfedc_ba98_7654_3210u64;
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        assert_eq!(prod, big(u128::from(a) * u128::from(b)));
    }

    #[test]
    fn mul_zero() {
        let a = big(u128::MAX);
        assert!(a.mul(&BigUint::zero()).is_zero());
        assert!(BigUint::zero().mul(&a).is_zero());
    }

    #[test]
    fn shifts() {
        let v = BigUint::from_u64(1);
        assert_eq!(v.shl(130).shr(130), v);
        assert_eq!(v.shl(64).bit_len(), 65);
        assert!(v.shr(1).is_zero());
        let w = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(w.shl(3).shr(3), w);
    }

    #[test]
    fn div_rem_small() {
        let a = big(1_000_000_007 * 97 + 13);
        let (q, r) = a.div_rem(&BigUint::from_u64(1_000_000_007));
        assert_eq!(q.to_u64(), 97);
        assert_eq!(r.to_u64(), 13);
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0").unwrap();
        let b = BigUint::from_hex("fedcba9876543210fedcba98").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn div_rem_exact() {
        let b = BigUint::from_hex("deadbeefcafebabe1234").unwrap();
        let q = BigUint::from_hex("1122334455667788").unwrap();
        let a = b.mul(&q);
        let (q2, r2) = a.div_rem(&b);
        assert_eq!(q2, q);
        assert!(r2.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_pow_small() {
        // 4^13 mod 497 = 445
        let r = BigUint::from_u64(4).mod_pow(&BigUint::from_u64(13), &BigUint::from_u64(497));
        assert_eq!(r.to_u64(), 445);
    }

    #[test]
    fn mod_pow_fermat() {
        // a^(p-1) = 1 mod p for prime p.
        let p = BigUint::from_u64(1_000_000_007);
        let a = BigUint::from_u64(123_456_789);
        let r = a.mod_pow(&p.sub(&BigUint::one()), &p);
        assert!(r.is_one());
    }

    #[test]
    fn mod_pow_modulus_one() {
        let r = BigUint::from_u64(5).mod_pow(&BigUint::from_u64(5), &BigUint::one());
        assert!(r.is_zero());
    }

    #[test]
    fn gcd_basic() {
        let a = BigUint::from_u64(48);
        let b = BigUint::from_u64(36);
        assert_eq!(a.gcd(&b).to_u64(), 12);
        assert_eq!(a.gcd(&BigUint::zero()), a);
    }

    #[test]
    fn mod_inv_small() {
        let a = BigUint::from_u64(3);
        let m = BigUint::from_u64(11);
        let inv = a.mod_inv(&m).unwrap();
        assert_eq!(a.mul(&inv).rem(&m).to_u64(), 1);
    }

    #[test]
    fn mod_inv_nonexistent() {
        let a = BigUint::from_u64(6);
        let m = BigUint::from_u64(9);
        assert!(a.mod_inv(&m).is_none());
    }

    #[test]
    fn mod_inv_large() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = BigUint::gen_prime(&mut rng, 128);
        let a = BigUint::random_below(&mut rng, &m);
        if a.is_zero() {
            return;
        }
        let inv = a.mod_inv(&m).unwrap();
        assert!(a.mul(&inv).rem(&m).is_one());
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(BigUint::from_u64(2).is_probable_prime(&mut rng, 10));
        assert!(BigUint::from_u64(97).is_probable_prime(&mut rng, 10));
        assert!(BigUint::from_u64(1_000_000_007).is_probable_prime(&mut rng, 10));
        assert!(!BigUint::from_u64(1).is_probable_prime(&mut rng, 10));
        assert!(!BigUint::from_u64(561).is_probable_prime(&mut rng, 10)); // Carmichael
        assert!(!BigUint::from_u64(1_000_000_006).is_probable_prime(&mut rng, 10));
    }

    #[test]
    fn gen_prime_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = BigUint::gen_prime(&mut rng, 96);
        assert_eq!(p.bit_len(), 96);
        assert!(!p.is_even());
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(7);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        let c = a.shl(64);
        assert!(c > b);
    }

    #[test]
    fn hex_roundtrip() {
        let cases = ["1", "ff", "deadbeef", "123456789abcdef0123456789abcdef"];
        for c in cases {
            let v = BigUint::from_hex(c).unwrap();
            assert_eq!(v.to_hex(), c, "case {c}");
        }
        assert_eq!(BigUint::from_hex("0").unwrap().to_hex(), "0");
        assert_eq!(BigUint::from_hex("00ff").unwrap().to_hex(), "ff");
    }

    #[test]
    fn hex_invalid() {
        assert!(BigUint::from_hex("").is_none());
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from_u64(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }
}
