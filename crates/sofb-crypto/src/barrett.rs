//! Barrett reduction (HAC algorithm 14.42): fast repeated reduction
//! modulo a fixed modulus.
//!
//! Modular exponentiation performs thousands of reductions against the
//! same modulus; Barrett replaces each full division with two truncated
//! multiplications against a precomputed reciprocal `µ = ⌊b^{2k}/m⌋`
//! (here `b = 2^64`, `k` = limb count of `m`). [`BigUint::mod_pow`] uses
//! it automatically for multi-limb moduli, which is what makes the real
//! RSA/DSA implementations usable at 1024+ bits.

use crate::bignum::BigUint;

/// Precomputed context for reducing values modulo a fixed `m`.
#[derive(Clone, Debug)]
pub struct Barrett {
    m: BigUint,
    mu: BigUint,
    /// Limb count of `m`.
    k: usize,
}

impl Barrett {
    /// Precomputes the reciprocal for `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn new(m: &BigUint) -> Self {
        assert!(!m.is_zero(), "zero modulus");
        let k = m.limb_len();
        // mu = floor(b^(2k) / m)
        let b2k = BigUint::one().shl(2 * k * 64);
        let mu = b2k.div_rem(m).0;
        Barrett {
            m: m.clone(),
            mu,
            k,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.m
    }

    /// Computes `x mod m`. Requires `x < m²` (always true for products of
    /// two reduced operands); falls back to plain division otherwise.
    pub fn reduce(&self, x: &BigUint) -> BigUint {
        if x < &self.m {
            return x.clone();
        }
        if x.limb_len() > 2 * self.k {
            // Out of Barrett's input range; rare (callers reduce products
            // of already-reduced operands).
            return x.rem(&self.m);
        }
        let k = self.k;
        // q1 = floor(x / b^(k-1)); q2 = q1 * mu; q3 = floor(q2 / b^(k+1))
        let q1 = x.shr((k - 1) * 64);
        let q2 = q1.mul(&self.mu);
        let q3 = q2.shr((k + 1) * 64);
        // r = (x mod b^(k+1)) - (q3 * m mod b^(k+1))
        let r1 = x.low_limbs(k + 1);
        let r2 = q3.mul(&self.m).low_limbs(k + 1);
        let mut r = if r1 >= r2 {
            r1.sub(&r2)
        } else {
            // r1 - r2 + b^(k+1)
            r1.add(&BigUint::one().shl((k + 1) * 64)).sub(&r2)
        };
        // At most two correction subtractions (HAC 14.43).
        while r >= self.m {
            r = r.sub(&self.m);
        }
        r
    }

    /// `a * b mod m` with both operands already reduced.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.reduce(&a.mul(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reduce_matches_rem_small() {
        let m = BigUint::from_u64(1_000_000_007);
        let b = Barrett::new(&m);
        for v in [0u64, 1, 999_999_999, 1_000_000_007, u64::MAX] {
            let x = BigUint::from_u64(v);
            assert_eq!(b.reduce(&x), x.rem(&m), "v = {v}");
        }
    }

    #[test]
    fn reduce_matches_rem_random_multi_limb() {
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..50 {
            let m = BigUint::random_bits(&mut rng, 192).add(&BigUint::one());
            let b = Barrett::new(&m);
            // Products of two reduced operands (the mod_pow use case).
            let x = BigUint::random_below(&mut rng, &m);
            let y = BigUint::random_below(&mut rng, &m);
            let prod = x.mul(&y);
            assert_eq!(b.reduce(&prod), prod.rem(&m), "trial {trial}");
        }
    }

    #[test]
    fn mul_mod_agrees_with_naive() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = BigUint::gen_prime(&mut rng, 128);
        let b = Barrett::new(&m);
        let x = BigUint::random_below(&mut rng, &m);
        let y = BigUint::random_below(&mut rng, &m);
        assert_eq!(b.mul_mod(&x, &y), x.mul_mod(&y, &m));
    }

    #[test]
    fn oversized_input_falls_back() {
        let m = BigUint::from_u64(97);
        let b = Barrett::new(&m);
        let huge = BigUint::one().shl(900);
        assert_eq!(b.reduce(&huge), huge.rem(&m));
    }

    #[test]
    #[should_panic(expected = "zero modulus")]
    fn zero_modulus_rejected() {
        Barrett::new(&BigUint::zero());
    }
}
