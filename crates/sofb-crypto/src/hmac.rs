//! HMAC keyed message authentication (RFC 2104) over any [`DigestAlg`].
//!
//! The simulated crypto provider authenticates messages with HMAC tags while
//! charging virtual time according to the configured public-key scheme; HMAC
//! is also used for the paper's "message authentication codes" assumption
//! (Assumption 2 cites Tsudik's one-way-hash MACs).
//!
//! # Examples
//!
//! ```
//! use sofb_crypto::digest::DigestAlg;
//! use sofb_crypto::hmac::hmac;
//!
//! let tag = hmac(DigestAlg::Sha256, b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

use crate::digest::DigestAlg;

/// Computes `HMAC(key, message)` with the given digest algorithm.
pub fn hmac(alg: DigestAlg, key: &[u8], message: &[u8]) -> Vec<u8> {
    let block = alg.block_len();
    // Keys longer than a block are hashed first.
    let mut k = if key.len() > block {
        alg.digest(key)
    } else {
        key.to_vec()
    };
    k.resize(block, 0);

    let mut inner = Vec::with_capacity(block + message.len());
    inner.extend(k.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(message);
    let inner_digest = alg.digest(&inner);

    let mut outer = Vec::with_capacity(block + inner_digest.len());
    outer.extend(k.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_digest);
    alg.digest(&outer)
}

/// Constant-time-ish comparison of two byte strings.
///
/// Returns `false` for length mismatches without early exit inside the body.
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut acc = 0u8;
    for (a, b) in expected.iter().zip(actual) {
        acc |= a ^ b;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 test cases for HMAC-MD5 and HMAC-SHA1, RFC 4231 for SHA-256.
    #[test]
    fn rfc2202_md5_case1() {
        let key = [0x0b; 16];
        let tag = hmac(DigestAlg::Md5, &key, b"Hi There");
        assert_eq!(hex(&tag), "9294727a3638bb1c13f48ef8158bfc9d");
    }

    #[test]
    fn rfc2202_md5_case2() {
        let tag = hmac(DigestAlg::Md5, b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "750c783e6ab0b503eaa86e310a5db738");
    }

    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0b; 20];
        let tag = hmac(DigestAlg::Sha1, &key, b"Hi There");
        assert_eq!(hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_sha1_long_key() {
        // Case 6: 80-byte key exercises the key-hashing path.
        let key = [0xaa; 80];
        let tag = hmac(
            DigestAlg::Sha1,
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&tag), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn rfc4231_sha256_case2() {
        let tag = hmac(DigestAlg::Sha256, b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn verify_tag_behaviour() {
        let t = hmac(DigestAlg::Sha256, b"k", b"m");
        assert!(verify_tag(&t, &t));
        let mut bad = t.clone();
        bad[0] ^= 1;
        assert!(!verify_tag(&t, &bad));
        assert!(!verify_tag(&t, &t[..31]));
    }

    #[test]
    fn different_keys_different_tags() {
        let a = hmac(DigestAlg::Sha1, b"key-a", b"m");
        let b = hmac(DigestAlg::Sha1, b"key-b", b"m");
        assert_ne!(a, b);
    }
}
