//! DSA signatures (FIPS 186 style).
//!
//! The paper's third crypto combination is "SHA1 with DSA for the key size
//! of 1024". DSA verification requires two modular exponentiations versus
//! RSA's single small-exponent one — the asymmetry the paper identifies as
//! the reason "DSA is generally not suited for Byzantine order protocols".
//!
//! Domain parameter generation follows the classic construction: pick a
//! `q_bits`-bit prime `q`, then search for `p = q·k + 1` prime, and take
//! `g = h^((p-1)/q) mod p > 1`.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use sofb_crypto::digest::DigestAlg;
//! use sofb_crypto::dsa::{DsaParams, DsaKeyPair};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let params = DsaParams::generate(&mut rng, 256, 160);
//! let kp = DsaKeyPair::generate(&mut rng, params);
//! let sig = kp.sign(&mut rng, DigestAlg::Sha1, b"attack at dawn");
//! assert!(kp.public().verify(DigestAlg::Sha1, b"attack at dawn", &sig));
//! ```

use rand::Rng;

use crate::bignum::BigUint;
use crate::digest::DigestAlg;

/// DSA domain parameters `(p, q, g)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsaParams {
    p: BigUint,
    q: BigUint,
    g: BigUint,
}

/// A DSA public key: domain parameters plus `y = g^x mod p`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsaPublicKey {
    params: DsaParams,
    y: BigUint,
}

/// A DSA key pair.
#[derive(Clone, Debug)]
pub struct DsaKeyPair {
    public: DsaPublicKey,
    x: BigUint,
}

/// A DSA signature `(r, s)`, serialized as two length-prefixed big-endian
/// integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsaSignature {
    r: BigUint,
    s: BigUint,
}

impl DsaSignature {
    /// Serializes as `len(r) || r || len(s) || s` with 2-byte lengths.
    pub fn to_bytes(&self) -> Vec<u8> {
        let r = self.r.to_bytes_be();
        let s = self.s.to_bytes_be();
        let mut out = Vec::with_capacity(4 + r.len() + s.len());
        out.extend_from_slice(&(r.len() as u16).to_be_bytes());
        out.extend_from_slice(&r);
        out.extend_from_slice(&(s.len() as u16).to_be_bytes());
        out.extend_from_slice(&s);
        out
    }

    /// Parses the serialization produced by [`DsaSignature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 2 {
            return None;
        }
        let r_len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        if bytes.len() < 2 + r_len + 2 {
            return None;
        }
        let r = BigUint::from_bytes_be(&bytes[2..2 + r_len]);
        let s_off = 2 + r_len;
        let s_len = u16::from_be_bytes([bytes[s_off], bytes[s_off + 1]]) as usize;
        if bytes.len() != s_off + 2 + s_len {
            return None;
        }
        let s = BigUint::from_bytes_be(&bytes[s_off + 2..]);
        Some(DsaSignature { r, s })
    }
}

impl DsaParams {
    /// Generates parameters with a `p_bits`-bit modulus and `q_bits`-bit
    /// subgroup order.
    ///
    /// # Panics
    ///
    /// Panics if `q_bits + 16 > p_bits` or `q_bits < 32`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, p_bits: usize, q_bits: usize) -> Self {
        assert!(q_bits >= 32, "subgroup too small");
        assert!(
            q_bits + 16 <= p_bits,
            "p must be substantially larger than q"
        );
        let one = BigUint::one();
        let q = BigUint::gen_prime(rng, q_bits);
        // Search p = q*k + 1 with the right bit length.
        let k_bits = p_bits - q_bits;
        loop {
            let mut k = BigUint::random_bits(rng, k_bits);
            // Force top bit so p lands at p_bits, and make k even so p is odd.
            k = k.add(&one.shl(k_bits - 1));
            if !k.is_even() {
                k = k.add(&one);
            }
            let p = q.mul(&k).add(&one);
            if p.bit_len() != p_bits {
                continue;
            }
            if !p.is_probable_prime(rng, 20) {
                continue;
            }
            // g = h^((p-1)/q) mod p for the first h that gives g > 1.
            let exp = p.sub(&one).div_rem(&q).0;
            let mut h = BigUint::from_u64(2);
            loop {
                let g = h.mod_pow(&exp, &p);
                if !g.is_one() && !g.is_zero() {
                    return DsaParams { p, q, g };
                }
                h = h.add(&one);
            }
        }
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> &BigUint {
        &self.q
    }

    /// The modulus `p`.
    pub fn p(&self) -> &BigUint {
        &self.p
    }

    /// Reduces a digest to an exponent modulo `q` (leftmost-bits rule).
    fn hash_to_int(&self, alg: DigestAlg, message: &[u8]) -> BigUint {
        let digest = alg.digest(message);
        let z = BigUint::from_bytes_be(&digest);
        let excess = (digest.len() * 8).saturating_sub(self.q.bit_len());
        z.shr(excess).rem(&self.q)
    }
}

impl DsaPublicKey {
    /// The domain parameters.
    pub fn params(&self) -> &DsaParams {
        &self.params
    }

    /// Verifies `sig_bytes` over `message` digested with `alg`.
    ///
    /// Returns `false` for malformed signatures; never panics on
    /// attacker-controlled input.
    pub fn verify(&self, alg: DigestAlg, message: &[u8], sig_bytes: &[u8]) -> bool {
        let Some(sig) = DsaSignature::from_bytes(sig_bytes) else {
            return false;
        };
        let q = &self.params.q;
        let p = &self.params.p;
        if sig.r.is_zero() || sig.s.is_zero() || &sig.r >= q || &sig.s >= q {
            return false;
        }
        let Some(w) = sig.s.mod_inv(q) else {
            return false;
        };
        let z = self.params.hash_to_int(alg, message);
        let u1 = z.mul_mod(&w, q);
        let u2 = sig.r.mul_mod(&w, q);
        let v = self
            .params
            .g
            .mod_pow(&u1, p)
            .mul_mod(&self.y.mod_pow(&u2, p), p)
            .rem(q);
        v == sig.r
    }
}

impl DsaKeyPair {
    /// Generates a key pair under `params`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, params: DsaParams) -> Self {
        let one = BigUint::one();
        let x = BigUint::random_below(rng, &params.q.sub(&one)).add(&one);
        let y = params.g.mod_pow(&x, &params.p);
        DsaKeyPair {
            public: DsaPublicKey { params, y },
            x,
        }
    }

    /// The public half.
    pub fn public(&self) -> &DsaPublicKey {
        &self.public
    }

    /// Signs `message` (digested with `alg`), returning the serialized
    /// `(r, s)` pair. DSA signing is randomized and needs `rng`.
    pub fn sign<R: Rng + ?Sized>(&self, rng: &mut R, alg: DigestAlg, message: &[u8]) -> Vec<u8> {
        let params = &self.public.params;
        let q = &params.q;
        let p = &params.p;
        let one = BigUint::one();
        let z = params.hash_to_int(alg, message);
        loop {
            let k = BigUint::random_below(rng, &q.sub(&one)).add(&one);
            let r = params.g.mod_pow(&k, p).rem(q);
            if r.is_zero() {
                continue;
            }
            let Some(k_inv) = k.mod_inv(q) else { continue };
            let s = k_inv.mul_mod(&z.add(&self.x.mul_mod(&r, q)), q);
            if s.is_zero() {
                continue;
            }
            return DsaSignature { r, s }.to_bytes();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> (DsaKeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let params = DsaParams::generate(&mut rng, 256, 160);
        let kp = DsaKeyPair::generate(&mut rng, params);
        (kp, rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (kp, mut rng) = keypair();
        let sig = kp.sign(&mut rng, DigestAlg::Sha1, b"hello");
        assert!(kp.public().verify(DigestAlg::Sha1, b"hello", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let (kp, mut rng) = keypair();
        let sig = kp.sign(&mut rng, DigestAlg::Sha1, b"hello");
        assert!(!kp.public().verify(DigestAlg::Sha1, b"hellp", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (kp, mut rng) = keypair();
        let mut sig = kp.sign(&mut rng, DigestAlg::Sha1, b"hello");
        let n = sig.len();
        sig[n - 1] ^= 1;
        assert!(!kp.public().verify(DigestAlg::Sha1, b"hello", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (kp1, mut rng) = keypair();
        let params = kp1.public().params().clone();
        let kp2 = DsaKeyPair::generate(&mut rng, params);
        let sig = kp1.sign(&mut rng, DigestAlg::Sha1, b"hello");
        assert!(!kp2.public().verify(DigestAlg::Sha1, b"hello", &sig));
    }

    #[test]
    fn malformed_signature_rejected() {
        let (kp, _) = keypair();
        assert!(!kp.public().verify(DigestAlg::Sha1, b"hello", &[]));
        assert!(!kp.public().verify(DigestAlg::Sha1, b"hello", &[0, 1]));
        assert!(!kp.public().verify(DigestAlg::Sha1, b"hello", &[0xff; 64]));
    }

    #[test]
    fn randomized_signatures_both_verify() {
        let (kp, mut rng) = keypair();
        let s1 = kp.sign(&mut rng, DigestAlg::Sha1, b"m");
        let s2 = kp.sign(&mut rng, DigestAlg::Sha1, b"m");
        // Randomized k makes equal signatures vanishingly unlikely.
        assert_ne!(s1, s2);
        assert!(kp.public().verify(DigestAlg::Sha1, b"m", &s1));
        assert!(kp.public().verify(DigestAlg::Sha1, b"m", &s2));
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let (kp, mut rng) = keypair();
        let bytes = kp.sign(&mut rng, DigestAlg::Sha1, b"x");
        let sig = DsaSignature::from_bytes(&bytes).unwrap();
        assert_eq!(sig.to_bytes(), bytes);
    }

    #[test]
    fn params_have_requested_sizes() {
        let mut rng = StdRng::seed_from_u64(9);
        let params = DsaParams::generate(&mut rng, 256, 64);
        assert_eq!(params.p().bit_len(), 256);
        assert_eq!(params.q().bit_len(), 64);
        // q divides p - 1.
        let rem = params.p().sub(&BigUint::one()).rem(params.q());
        assert!(rem.is_zero());
    }

    #[test]
    fn works_with_other_digests() {
        let (kp, mut rng) = keypair();
        for alg in [DigestAlg::Md5, DigestAlg::Sha256] {
            let sig = kp.sign(&mut rng, alg, b"m");
            assert!(kp.public().verify(alg, b"m", &sig), "{alg}");
        }
    }
}
