//! # sofb-crypto — cryptographic substrate for the Streets of Byzantium
//!
//! From-scratch implementations of every cryptographic primitive the
//! paper's evaluation depends on:
//!
//! * [`bignum`] — arbitrary-precision arithmetic (Knuth division, modular
//!   exponentiation, Miller–Rabin primality) with [`barrett`] reduction;
//! * [`md5`], [`sha1`], [`sha256`] — the digest functions of the paper's
//!   three crypto combinations (plus a modern extension);
//! * [`hmac`] — keyed message authentication (Assumption 2 cites MACs);
//! * [`rsa`], [`dsa`] — the signature schemes of the evaluation matrix;
//! * [`scheme`] — the `MD5+RSA-1024`, `MD5+RSA-1536`, `SHA1+DSA-1024`
//!   combinations from §5;
//! * [`timing`] — a calibrated virtual-time cost table so the simulator can
//!   charge 2006-era P4/JDK-1.5 costs without executing them;
//! * [`provider`] — the [`provider::CryptoProvider`]
//!   abstraction (trusted-dealer key distribution, real and simulated
//!   providers).
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use sofb_crypto::provider::{CryptoProvider, Dealer};
//! use sofb_crypto::scheme::SchemeId;
//!
//! // A trusted dealer initializes three processes with real RSA keys.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut provs = Dealer::real(&mut rng, SchemeId::Md5Rsa1024, 3, Some(512));
//! let sig = provs[0].sign(b"order<1, 42, D(m)>");
//! assert!(provs[2].verify(0, b"order<1, 42, D(m)>", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrett;
pub mod bignum;
pub mod digest;
pub mod dsa;
pub mod hmac;
pub mod md5;
pub mod provider;
pub mod rsa;
pub mod scheme;
pub mod sha1;
pub mod sha256;
pub mod timing;

pub use digest::DigestAlg;
pub use provider::{CryptoProvider, Dealer, RealProvider, SimProvider};
pub use scheme::{SchemeId, SigAlg};
pub use timing::SchemeTiming;
