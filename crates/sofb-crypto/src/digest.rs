//! Unified digest interface over the crate's hash implementations.

use crate::md5::Md5;
use crate::sha1::Sha1;
use crate::sha256::Sha256;

/// A digest algorithm selector.
///
/// The paper's evaluation pairs MD5 with RSA and SHA-1 with DSA; SHA-256 is
/// offered as a modern extension point.
///
/// # Examples
///
/// ```
/// use sofb_crypto::digest::DigestAlg;
///
/// let d = DigestAlg::Sha1.digest(b"hello");
/// assert_eq!(d.len(), 20);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DigestAlg {
    /// MD5 (16-byte output). Broken; present only for paper fidelity.
    Md5,
    /// SHA-1 (20-byte output). Deprecated; present only for paper fidelity.
    Sha1,
    /// SHA-256 (32-byte output).
    Sha256,
}

impl DigestAlg {
    /// Output length in bytes.
    pub fn output_len(self) -> usize {
        match self {
            DigestAlg::Md5 => Md5::OUTPUT_LEN,
            DigestAlg::Sha1 => Sha1::OUTPUT_LEN,
            DigestAlg::Sha256 => Sha256::OUTPUT_LEN,
        }
    }

    /// Internal block length in bytes (all three are 64).
    pub fn block_len(self) -> usize {
        64
    }

    /// Computes the digest of `data`.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            DigestAlg::Md5 => Md5::digest(data).to_vec(),
            DigestAlg::Sha1 => Sha1::digest(data).to_vec(),
            DigestAlg::Sha256 => Sha256::digest(data).to_vec(),
        }
    }

    /// A short, stable, DER-free DigestInfo prefix tag used by the RSA
    /// signature padding to bind the digest algorithm into the signature.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DigestAlg::Md5 => 0x05,
            DigestAlg::Sha1 => 0x01,
            DigestAlg::Sha256 => 0x02,
        }
    }
}

impl std::fmt::Display for DigestAlg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DigestAlg::Md5 => write!(f, "MD5"),
            DigestAlg::Sha1 => write!(f, "SHA1"),
            DigestAlg::Sha256 => write!(f, "SHA256"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_lengths() {
        assert_eq!(DigestAlg::Md5.output_len(), 16);
        assert_eq!(DigestAlg::Sha1.output_len(), 20);
        assert_eq!(DigestAlg::Sha256.output_len(), 32);
        for alg in [DigestAlg::Md5, DigestAlg::Sha1, DigestAlg::Sha256] {
            assert_eq!(alg.digest(b"x").len(), alg.output_len());
        }
    }

    #[test]
    fn digests_differ_by_algorithm() {
        let m = b"same input";
        let a = DigestAlg::Md5.digest(m);
        let b = DigestAlg::Sha1.digest(m);
        let c = DigestAlg::Sha256.digest(m);
        assert_ne!(a, b[..16].to_vec());
        assert_ne!(b, c[..20].to_vec());
    }

    #[test]
    fn display_names() {
        assert_eq!(DigestAlg::Md5.to_string(), "MD5");
        assert_eq!(DigestAlg::Sha1.to_string(), "SHA1");
        assert_eq!(DigestAlg::Sha256.to_string(), "SHA256");
    }
}
