//! RSA signatures with EMSA-PKCS1-v1_5-style padding.
//!
//! Key generation uses Miller–Rabin probable primes with public exponent
//! 65537. Signing pads the message digest (`00 01 FF…FF 00 tag || digest`)
//! and applies the private exponent; verification applies the public
//! exponent and compares the re-padded digest.
//!
//! The paper evaluates RSA with 1024- and 1536-bit moduli. Those sizes work
//! here but are slow in debug builds; tests use 512-bit keys, and the
//! simulator charges virtual time from the calibrated
//! [`timing`](crate::timing) model instead of wall-clock signing cost.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use sofb_crypto::digest::DigestAlg;
//! use sofb_crypto::rsa::RsaKeyPair;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let kp = RsaKeyPair::generate(&mut rng, 512);
//! let sig = kp.sign(DigestAlg::Md5, b"attack at dawn");
//! assert!(kp.public().verify(DigestAlg::Md5, b"attack at dawn", &sig));
//! assert!(!kp.public().verify(DigestAlg::Md5, b"attack at dusk", &sig));
//! ```

use rand::Rng;

use crate::bignum::BigUint;
use crate::digest::DigestAlg;

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    /// Modulus size in bytes; signatures are exactly this long.
    k: usize,
}

/// An RSA key pair.
#[derive(Clone, Debug)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: BigUint,
}

impl RsaPublicKey {
    /// Modulus length in bytes (= signature length).
    pub fn signature_len(&self) -> usize {
        self.k
    }

    /// Modulus bit length.
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Verifies `sig` over `message` digested with `alg`.
    ///
    /// Returns `false` for any malformed or forged signature; never panics
    /// on attacker-controlled input.
    pub fn verify(&self, alg: DigestAlg, message: &[u8], sig: &[u8]) -> bool {
        if sig.len() != self.k {
            return false;
        }
        let s = BigUint::from_bytes_be(sig);
        if s >= self.n {
            return false;
        }
        let m = s.mod_pow(&self.e, &self.n);
        let em = m.to_bytes_be_padded(self.k);
        let expected = emsa_pad(alg, message, self.k);
        match expected {
            Some(exp) => exp == em,
            None => false,
        }
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 128` (the padding needs room for the digest).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 128, "modulus too small for digest padding");
        let e = BigUint::from_u64(65537);
        loop {
            let p = BigUint::gen_prime(rng, bits / 2);
            let q = BigUint::gen_prime(rng, bits - bits / 2);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.mod_inv(&phi) else {
                continue;
            };
            let k = bits.div_ceil(8);
            return RsaKeyPair {
                public: RsaPublicKey { n, e, k },
                d,
            };
        }
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Signs `message` (digested with `alg`); output length is the modulus
    /// length in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the digest does not fit the modulus (prevented by the
    /// minimum size enforced in [`RsaKeyPair::generate`]).
    pub fn sign(&self, alg: DigestAlg, message: &[u8]) -> Vec<u8> {
        let em = emsa_pad(alg, message, self.public.k).expect("digest too large for modulus");
        let m = BigUint::from_bytes_be(&em);
        let s = m.mod_pow(&self.d, &self.public.n);
        s.to_bytes_be_padded(self.public.k)
    }
}

/// EMSA-PKCS1-v1_5-style encoding: `00 01 FF…FF 00 tag || digest`.
///
/// Returns `None` when the digest cannot fit (needs ≥ 12 bytes overhead).
fn emsa_pad(alg: DigestAlg, message: &[u8], k: usize) -> Option<Vec<u8>> {
    let digest = alg.digest(message);
    let t_len = digest.len() + 1; // tag byte + digest
    if k < t_len + 11 {
        return None;
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.push(alg.tag());
    em.extend_from_slice(&digest);
    debug_assert_eq!(em.len(), k);
    Some(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(0xdead);
        RsaKeyPair::generate(&mut rng, 512)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        for alg in [DigestAlg::Md5, DigestAlg::Sha1, DigestAlg::Sha256] {
            let sig = kp.sign(alg, b"hello world");
            assert_eq!(sig.len(), kp.public().signature_len());
            assert!(kp.public().verify(alg, b"hello world", &sig), "{alg}");
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = keypair();
        let sig = kp.sign(DigestAlg::Sha1, b"original");
        assert!(!kp.public().verify(DigestAlg::Sha1, b"0riginal", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = keypair();
        let mut sig = kp.sign(DigestAlg::Sha1, b"original");
        sig[10] ^= 0x40;
        assert!(!kp.public().verify(DigestAlg::Sha1, b"original", &sig));
    }

    #[test]
    fn wrong_algorithm_rejected() {
        let kp = keypair();
        let sig = kp.sign(DigestAlg::Md5, b"msg");
        assert!(!kp.public().verify(DigestAlg::Sha1, b"msg", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = keypair();
        let mut rng = StdRng::seed_from_u64(0xbeef);
        let kp2 = RsaKeyPair::generate(&mut rng, 512);
        let sig = kp1.sign(DigestAlg::Sha1, b"msg");
        assert!(!kp2.public().verify(DigestAlg::Sha1, b"msg", &sig));
    }

    #[test]
    fn malformed_signature_lengths() {
        let kp = keypair();
        let sig = kp.sign(DigestAlg::Sha1, b"msg");
        assert!(!kp
            .public()
            .verify(DigestAlg::Sha1, b"msg", &sig[..sig.len() - 1]));
        let mut long = sig.clone();
        long.push(0);
        assert!(!kp.public().verify(DigestAlg::Sha1, b"msg", &long));
        assert!(!kp.public().verify(DigestAlg::Sha1, b"msg", &[]));
    }

    #[test]
    fn oversized_signature_value_rejected() {
        let kp = keypair();
        // All-FF value is >= n for any normalized modulus.
        let sig = vec![0xff; kp.public().signature_len()];
        assert!(!kp.public().verify(DigestAlg::Sha1, b"msg", &sig));
    }

    #[test]
    fn signatures_deterministic() {
        let kp = keypair();
        let a = kp.sign(DigestAlg::Md5, b"same");
        let b = kp.sign(DigestAlg::Md5, b"same");
        assert_eq!(a, b);
    }

    #[test]
    fn modulus_bits_reported() {
        let kp = keypair();
        assert_eq!(kp.public().modulus_bits(), 512);
        assert_eq!(kp.public().signature_len(), 64);
    }
}
