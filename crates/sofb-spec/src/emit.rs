//! Serializing a scenario back into `.scn` text — the repro emitter.
//!
//! The fuzzer's endgame is a *committable* minimal failing case: a spec
//! file under `specs/repros/` that re-parses through [`Spec::parse`] and
//! reproduces the violation bit-identically. [`emit_spec`] is that
//! serializer. It writes every scenario knob explicitly (a repro must
//! not drift when defaults do), pins the oracle and verdict in `[meta]`,
//! and refuses scenarios the grammar cannot express — non-default link
//! or CPU models, sub-millisecond durations — rather than silently
//! rounding them.
//!
//! [`Spec::parse`]: crate::spec::Spec::parse

use std::fmt;
use std::fmt::Write as _;

use sofb_harness::scenario::{RouterPolicy, Scenario, ScenarioFaultKind};
use sofb_harness::{Arrival, Links, ShardLoad};
use sofb_sim::cpu::CpuModel;
use sofb_sim::time::{SimDuration, SimTime};

use crate::spec::Verdict;

/// A scenario that cannot be expressed in the `.scn` grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmitError {
    /// The scenario overrides the link shape; the grammar has no link
    /// keys, so emitting would silently drop the override.
    NonDefaultLinks,
    /// The scenario overrides the CPU model; the grammar has no CPU
    /// keys.
    NonDefaultCpu,
    /// The named duration is not millisecond-aligned; `.scn` durations
    /// are integral milliseconds and must round-trip exactly.
    SubMillisecond {
        /// Which knob carried the inexpressible duration.
        what: &'static str,
    },
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::NonDefaultLinks => {
                write!(f, "scenario overrides links; specs have no link keys")
            }
            EmitError::NonDefaultCpu => {
                write!(
                    f,
                    "scenario overrides the CPU model; specs have no CPU keys"
                )
            }
            EmitError::SubMillisecond { what } => {
                write!(f, "{what} is not millisecond-aligned")
            }
        }
    }
}

impl std::error::Error for EmitError {}

const NS_PER_MS: u64 = 1_000_000;

fn duration_ms(d: SimDuration, what: &'static str) -> Result<u64, EmitError> {
    if !d.0.is_multiple_of(NS_PER_MS) {
        return Err(EmitError::SubMillisecond { what });
    }
    Ok(d.0 / NS_PER_MS)
}

fn time_ms(t: SimTime, what: &'static str) -> Result<u64, EmitError> {
    if !t.as_ns().is_multiple_of(NS_PER_MS) {
        return Err(EmitError::SubMillisecond { what });
    }
    Ok(t.as_ns() / NS_PER_MS)
}

fn router_value(policy: &RouterPolicy) -> String {
    match policy {
        RouterPolicy::Hash => "hash".to_string(),
        RouterPolicy::EvenRanges => "even_ranges".to_string(),
        RouterPolicy::Ranges(ranges) => {
            let mut out = "ranges".to_string();
            for (lo, hi) in ranges {
                if *hi == u64::MAX {
                    let _ = write!(out, " {lo}..=max");
                } else {
                    let _ = write!(out, " {lo}..={hi}");
                }
            }
            out
        }
    }
}

/// Serializes a single-point scenario as `.scn` text with a pinned
/// `[meta]` oracle and verdict. The output re-parses (through
/// [`Spec::parse`](crate::spec::Spec::parse)) to a spec whose base
/// scenario equals `scenario` — the round-trip the repro tests pin.
pub fn emit_spec(
    title: &str,
    oracle: &str,
    verdict: Verdict,
    scenario: &Scenario,
) -> Result<String, EmitError> {
    if scenario.links != Links::default() {
        return Err(EmitError::NonDefaultLinks);
    }
    if scenario.cpu != CpuModel::default() {
        return Err(EmitError::NonDefaultCpu);
    }

    let mut out = String::new();
    let k = &scenario.knobs;
    let _ = writeln!(out, "[meta]");
    let _ = writeln!(out, "title = {title}");
    let _ = writeln!(out, "oracle = {oracle}");
    let _ = writeln!(out, "verdict = {verdict}");
    let _ = writeln!(out);
    let _ = writeln!(out, "[scenario]");
    let _ = writeln!(out, "kind = {}", scenario.kind);
    let _ = writeln!(out, "f = {}", k.f);
    let _ = writeln!(out, "scheme = {}", k.scheme);
    let _ = writeln!(out, "seed = {}", k.seed);
    let _ = writeln!(
        out,
        "interval_ms = {}",
        duration_ms(k.batching_interval, "interval_ms")?
    );
    let _ = writeln!(out, "batch_max_bytes = {}", k.batch_max_bytes);
    let _ = writeln!(
        out,
        "order_timeout_ms = {}",
        duration_ms(k.order_timeout, "order_timeout_ms")?
    );
    let _ = writeln!(
        out,
        "heartbeat_period_ms = {}",
        duration_ms(k.heartbeat_period, "heartbeat_period_ms")?
    );
    let _ = writeln!(out, "heartbeat_misses = {}", k.heartbeat_misses);
    let _ = writeln!(out, "recovery_beats = {}", k.recovery_beats);
    let _ = writeln!(out, "checkpoint_interval = {}", k.checkpoint_interval);
    let _ = writeln!(out, "backlog_pad = {}", k.backlog_pad);
    let _ = writeln!(
        out,
        "time_checks = {}",
        if k.time_checks { "on" } else { "off" }
    );
    match k.request_timeout {
        None => {
            let _ = writeln!(out, "request_timeout_ms = none");
        }
        Some(d) => {
            let _ = writeln!(
                out,
                "request_timeout_ms = {}",
                duration_ms(d, "request_timeout_ms")?
            );
        }
    }
    let _ = writeln!(out, "shards = {}", scenario.shards);
    let _ = writeln!(out, "router = {}", router_value(&scenario.router));
    // 0 is the programmatic legacy-path default the grammar rejects;
    // omitting the key reproduces it.
    if scenario.world_workers > 0 {
        let _ = writeln!(out, "world_workers = {}", scenario.world_workers);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "[window]");
    let _ = writeln!(out, "warmup_s = {}", scenario.window.warmup_s);
    let _ = writeln!(out, "run_s = {}", scenario.window.run_s);
    let _ = writeln!(out, "drain_s = {}", scenario.window.drain_s);

    for c in &scenario.clients {
        let _ = writeln!(out);
        let _ = writeln!(out, "[client]");
        // `{}` on f64 prints the shortest representation that parses
        // back to the same value — exact round-trip.
        let _ = writeln!(out, "rate = {}", c.rate_per_sec);
        let _ = writeln!(out, "size = {}", c.request_size);
        let _ = writeln!(
            out,
            "arrival = {}",
            match c.arrival {
                Arrival::Constant => "constant",
                Arrival::Poisson => "poisson",
            }
        );
        let _ = writeln!(
            out,
            "load = {}",
            match c.load {
                ShardLoad::Global => "global",
                ShardLoad::PerShard => "per_shard",
            }
        );
        let _ = writeln!(out, "population = {}", c.population);
    }

    for fault in &scenario.faults {
        let _ = writeln!(out);
        let _ = writeln!(out, "[fault]");
        let window =
            |out: &mut String, from: SimTime, until: Option<SimTime>| -> Result<(), EmitError> {
                writeln!(out, "from_ms = {}", time_ms(from, "fault from_ms")?).ok();
                if let Some(u) = until {
                    writeln!(out, "until_ms = {}", time_ms(u, "fault until_ms")?).ok();
                }
                Ok(())
            };
        match fault.kind {
            ScenarioFaultKind::Crash { at } => {
                let _ = writeln!(out, "kind = crash");
                let _ = writeln!(out, "process = {}", fault.process.0);
                let _ = writeln!(out, "at_ms = {}", time_ms(at, "fault at_ms")?);
            }
            ScenarioFaultKind::Mute { from, until } => {
                let _ = writeln!(out, "kind = mute");
                let _ = writeln!(out, "process = {}", fault.process.0);
                window(&mut out, from, until)?;
            }
            ScenarioFaultKind::Delay { from, until, extra } => {
                let _ = writeln!(out, "kind = delay");
                let _ = writeln!(out, "process = {}", fault.process.0);
                let _ = writeln!(out, "extra_ms = {}", duration_ms(extra, "fault extra_ms")?);
                window(&mut out, from, until)?;
            }
            ScenarioFaultKind::Duplicate { from, until } => {
                let _ = writeln!(out, "kind = duplicate");
                let _ = writeln!(out, "process = {}", fault.process.0);
                window(&mut out, from, until)?;
            }
            ScenarioFaultKind::Reorder {
                from,
                until,
                jitter,
            } => {
                let _ = writeln!(out, "kind = reorder");
                let _ = writeln!(out, "process = {}", fault.process.0);
                let _ = writeln!(
                    out,
                    "jitter_ms = {}",
                    duration_ms(jitter, "fault jitter_ms")?
                );
                window(&mut out, from, until)?;
            }
            ScenarioFaultKind::CorruptOrderAt { o } => {
                let _ = writeln!(out, "kind = corrupt_order");
                let _ = writeln!(out, "process = {}", fault.process.0);
                let _ = writeln!(out, "seq = {}", o.0);
            }
        }
        if fault.shard != 0 {
            let _ = writeln!(out, "shard = {}", fault.shard);
        }
    }

    Ok(out)
}
