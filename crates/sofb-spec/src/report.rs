//! The diffable `GridReport` JSON emitter and its 1e-9 check gate —
//! the same style and contract as `BENCH_protocols.json`: a fixed-width
//! deterministic rendering, with host wall time carried for humans but
//! excluded from comparisons.

use std::fmt::Write as _;

use sofb_harness::scenario::GridReport;

/// Metric drift beyond this fails [`check`].
pub const TOLERANCE: f64 = 1e-9;

/// What the emitter stamps into the report header.
#[derive(Clone, Copy, Debug)]
pub struct ReportMeta<'a> {
    /// The spec file the grid came from (as given on the command line).
    pub spec: &'a str,
    /// The spec's `[meta]` title, if any.
    pub title: Option<&'a str>,
    /// Whether the `[smoke]` reduction was applied.
    pub smoke: bool,
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.3}"),
        _ => "null".to_string(),
    }
}

/// Renders a grid report as deterministic JSON: every point in grid
/// order with its labels, seed and measurements. Identical grids render
/// to identical text on any machine — only `wall_ms` varies, and
/// [`check`] excludes it.
pub fn render(report: &GridReport, meta: ReportMeta<'_>) -> String {
    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"schema\": \"sofbyz-grid-report/v1\",").unwrap();
    writeln!(body, "  \"spec\": {},", json_str(meta.spec)).unwrap();
    match meta.title {
        Some(t) => writeln!(body, "  \"title\": {},", json_str(t)).unwrap(),
        None => writeln!(body, "  \"title\": null,").unwrap(),
    }
    writeln!(body, "  \"smoke\": {},", meta.smoke).unwrap();
    writeln!(body, "  \"points\": [").unwrap();
    for (i, p) in report.points.iter().enumerate() {
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"index\": {},", p.index).unwrap();
        let labels = p
            .labels
            .iter()
            .map(|(k, v)| format!("{}: {}", json_str(k), json_str(v)))
            .collect::<Vec<_>>()
            .join(", ");
        writeln!(body, "      \"labels\": {{{labels}}},").unwrap();
        writeln!(body, "      \"seed\": {},", p.seed).unwrap();
        writeln!(
            body,
            "      \"kind\": {},",
            json_str(&p.scenario.kind.to_string())
        )
        .unwrap();
        writeln!(body, "      \"shards\": {},", p.scenario.shards).unwrap();
        writeln!(
            body,
            "      \"committed_requests\": {},",
            p.report.committed_requests()
        )
        .unwrap();
        writeln!(
            body,
            "      \"throughput_req_per_proc_s\": {:.3},",
            p.report.throughput_per_process
        )
        .unwrap();
        writeln!(
            body,
            "      \"aggregate_throughput_req_s\": {:.3},",
            p.report.aggregate_throughput
        )
        .unwrap();
        writeln!(body, "      \"latency_ms\": {{").unwrap();
        writeln!(
            body,
            "        \"mean\": {},",
            json_num(p.report.global.mean_ms)
        )
        .unwrap();
        writeln!(
            body,
            "        \"p50\": {},",
            json_num(p.report.global.p50_ms)
        )
        .unwrap();
        writeln!(
            body,
            "        \"p99\": {}",
            json_num(p.report.global.p99_ms)
        )
        .unwrap();
        writeln!(body, "      }},").unwrap();
        writeln!(
            body,
            "      \"msgs_per_batch\": {:.3},",
            p.report.msgs_per_batch
        )
        .unwrap();
        writeln!(
            body,
            "      \"failover_ms\": {},",
            json_num(p.report.failover_ms)
        )
        .unwrap();
        // Per-engine scheduler/arena traffic, before aggregation: one row
        // per isolated engine (per shard on the parallel path; a single
        // row otherwise). Deterministic integers, compared exactly by
        // `check` — a parallel-scaling regression names its shard.
        writeln!(body, "      \"engine_shards\": [").unwrap();
        let engines = &p.report.engine_per_shard;
        for (s, e) in engines.iter().enumerate() {
            writeln!(
                body,
                "        {{\"shard\": {s}, \"arena_high_water\": {}, \"heap_pushes\": {}}}{}",
                e.arena_high_water,
                e.heap_pushes,
                if s + 1 < engines.len() { "," } else { "" }
            )
            .unwrap();
        }
        writeln!(body, "      ],").unwrap();
        writeln!(body, "      \"wall_ms\": {:.1}", p.wall_ms).unwrap();
        writeln!(
            body,
            "    }}{}",
            if i + 1 < report.points.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(body, "  ]").unwrap();
    writeln!(body, "}}").unwrap();
    body
}

/// The keys whose values are compared numerically (with [`TOLERANCE`])
/// rather than textually — measurement outputs that are stable to 1e-9
/// but could in principle re-format.
const METRIC_KEYS: [&str; 7] = [
    "throughput_req_per_proc_s",
    "aggregate_throughput_req_s",
    "mean",
    "p50",
    "p99",
    "msgs_per_batch",
    "failover_ms",
];

fn metric_value(line: &str) -> Option<(&'static str, f64)> {
    let line = line.trim();
    for key in METRIC_KEYS {
        if let Some(rest) = line.strip_prefix(&format!("\"{key}\": ")) {
            let raw = rest.trim_end_matches(',');
            if raw == "null" {
                return Some((key, f64::NAN));
            }
            if let Ok(v) = raw.parse::<f64>() {
                return Some((key, v));
            }
        }
    }
    None
}

fn is_wall(line: &str) -> bool {
    line.trim_start().starts_with("\"wall_ms\":")
}

/// Compares a regenerated report against a committed one: metric lines
/// numerically within [`TOLERANCE`] (`null` matches `null`), every other
/// line textually, `wall_ms` excluded. Returns the drift list on
/// failure.
pub fn check(committed: &str, regenerated: &str) -> Result<(), String> {
    let want: Vec<&str> = committed.lines().filter(|l| !is_wall(l)).collect();
    let got: Vec<&str> = regenerated.lines().filter(|l| !is_wall(l)).collect();
    if want.is_empty() {
        return Err("committed report is empty".to_string());
    }
    if want.len() != got.len() {
        return Err(format!(
            "line count mismatch: committed {} vs regenerated {} (wall_ms excluded)",
            want.len(),
            got.len()
        ));
    }
    let mut drifts = Vec::new();
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        match (metric_value(w), metric_value(g)) {
            (Some((wk, wv)), Some((gk, gv))) if wk == gk => {
                let same = (wv.is_nan() && gv.is_nan()) || (wv - gv).abs() <= TOLERANCE;
                if !same {
                    drifts.push(format!(
                        "  line {}: {wk}: committed {wv} vs regenerated {gv}",
                        i + 1
                    ));
                }
            }
            _ => {
                // Wall-stripped structural lines must match exactly:
                // labels, seeds, shapes, counts.
                if w.trim_end() != g.trim_end() {
                    drifts.push(format!(
                        "  line {}: committed `{}` vs regenerated `{}`",
                        i + 1,
                        w.trim(),
                        g.trim()
                    ));
                }
            }
        }
    }
    if drifts.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} line(s) drifted beyond {TOLERANCE}:\n{}",
            drifts.len(),
            drifts.join("\n")
        ))
    }
}
