//! The typed spec model and its lowering onto [`Scenario`]/[`SweepGrid`].
//!
//! [`Spec::parse`] turns a `.scn` file into a validated [`Spec`]: a base
//! scenario, the declared sweep axes (file order — which is patch order),
//! the seed replication set and the optional `[smoke]` reduction.
//! [`Spec::grid`] lowers it onto the harness's [`SweepGrid`], building
//! exactly the same labelled axis patches the in-code sweeps build — the
//! spec-equivalence tests pin that a spec-driven grid expands to
//! bit-identical cells.

use std::fmt;

use sofb_crypto::scheme::SchemeId;
use sofb_harness::scenario::{Axis, ClientLoad, RouterPolicy, Scenario, ScenarioFault, SweepGrid};
use sofb_harness::{Arrival, ProtocolKind, ShardLoad};
use sofb_obs::TraceConfig;
use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_sim::time::{SimDuration, SimTime};

use crate::error::{SpecError, SpecErrorKind};
use crate::parse::{split_sections, RawEntry, RawSection};

/// A parsed, internally consistent `.scn` spec.
///
/// What it holds is plain data: lowering through [`Spec::grid`] and then
/// [`SweepGrid::cells`] (or any runner) revalidates through
/// [`Scenario::validate`], so a `Spec` in hand still cannot smuggle a
/// malformed point past the harness.
#[derive(Clone, Debug)]
pub struct Spec {
    /// The `[meta]` title, if the spec carries one.
    pub title: Option<String>,
    /// The `[meta]` oracle name, if the spec pins one — which fuzz
    /// oracle a repro under `specs/repros/` was minimized against.
    pub oracle: Option<String>,
    /// The `[meta]` pinned verdict, if the spec carries one — what
    /// `sofb fuzz --replay` asserts when re-running the spec.
    pub verdict: Option<Verdict>,
    /// The fully assembled base scenario every axis patches.
    pub base: Scenario,
    /// The `[trace]` section, if the spec carries one: how `sofb trace`
    /// (and any observed run of this spec) filters its structured trace.
    /// Grid lowering ignores it — tracing never perturbs measurements.
    pub trace: Option<TraceConfig>,
    axes: Vec<AxisSpec>,
    seeds: Vec<u64>,
    smoke: Option<Smoke>,
}

/// The pinned outcome of a repro spec (`[meta] verdict = …`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The spec must run clean under its oracle.
    Pass,
    /// The spec must deterministically violate its oracle.
    Violation,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pass => write!(f, "pass"),
            Verdict::Violation => write!(f, "violation"),
        }
    }
}

/// The swept scenario fields an `[axis]` section can name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AxisField {
    Kind,
    F,
    Scheme,
    IntervalMs,
    Shards,
    Clients,
    Rate,
    BacklogPad,
    Seed,
    GstMs,
    DupMs,
    ReorderMs,
    WorldWorkers,
}

impl AxisField {
    fn from_key(value: &str) -> Option<Self> {
        Some(match value {
            "kind" => AxisField::Kind,
            "f" => AxisField::F,
            "scheme" => AxisField::Scheme,
            "interval_ms" => AxisField::IntervalMs,
            "shards" => AxisField::Shards,
            "clients" => AxisField::Clients,
            "rate" => AxisField::Rate,
            "backlog_pad" => AxisField::BacklogPad,
            "seed" => AxisField::Seed,
            "gst_ms" => AxisField::GstMs,
            "dup_ms" => AxisField::DupMs,
            "reorder_ms" => AxisField::ReorderMs,
            "world_workers" => AxisField::WorldWorkers,
            _ => return None,
        })
    }

    /// The default axis (label) name — what the canned in-code axes use.
    fn default_name(self) -> &'static str {
        match self {
            AxisField::Kind => "kind",
            AxisField::F => "f",
            AxisField::Scheme => "scheme",
            AxisField::IntervalMs => "interval_ms",
            AxisField::Shards => "shards",
            AxisField::Clients => "clients",
            AxisField::Rate => "rate",
            AxisField::BacklogPad => "backlog_pad",
            AxisField::Seed => "seed",
            AxisField::GstMs => "gst_ms",
            AxisField::DupMs => "dup_ms",
            AxisField::ReorderMs => "reorder_ms",
            AxisField::WorldWorkers => "world_workers",
        }
    }

    fn is_int(self) -> bool {
        !matches!(self, AxisField::Kind | AxisField::Scheme | AxisField::Rate)
    }
}

/// A typed axis value list (the type follows the axis field).
#[derive(Clone, Debug)]
enum Values {
    Kinds(Vec<ProtocolKind>),
    Schemes(Vec<SchemeId>),
    Ints(Vec<u64>),
    Floats(Vec<f64>),
}

impl Values {
    fn len(&self) -> usize {
        match self {
            Values::Kinds(v) => v.len(),
            Values::Schemes(v) => v.len(),
            Values::Ints(v) => v.len(),
            Values::Floats(v) => v.len(),
        }
    }
}

/// A seed-coupling expression: `base [+ value] [+ f]` — the spec form of
/// the figure sweeps' historical seeding, where the world seed tracks
/// the swept value (and, for the f = 3 sweep, the resilience written by
/// an earlier axis).
#[derive(Clone, Copy, Debug)]
struct SeedExpr {
    base: u64,
    plus_value: bool,
    plus_f: bool,
}

impl SeedExpr {
    fn parse(entry: &RawEntry) -> Result<Self, SpecError> {
        let mut e = SeedExpr {
            base: 0,
            plus_value: false,
            plus_f: false,
        };
        let mut any = false;
        for term in entry.value.split('+') {
            let term = term.trim();
            any = true;
            match term {
                "value" => e.plus_value = true,
                "f" => e.plus_f = true,
                _ => {
                    let t: u64 = term.parse().map_err(|_| bad_value(entry, SEED_EXPR))?;
                    e.base = e
                        .base
                        .checked_add(t)
                        .ok_or_else(|| bad_value(entry, SEED_EXPR))?;
                }
            }
        }
        if !any {
            return Err(bad_value(entry, SEED_EXPR));
        }
        Ok(e)
    }

    fn eval(&self, value: u64, f: u32) -> u64 {
        // Saturate rather than wrap: a seed near u64::MAX is still a
        // valid (if eccentric) seed, and patches must never panic.
        self.base
            .saturating_add(if self.plus_value { value } else { 0 })
            .saturating_add(if self.plus_f { u64::from(f) } else { 0 })
    }
}

const SEED_EXPR: &str = "a seed expression (`+`-separated integers, `value`, `f`)";

/// One `[axis]` section, lowered lazily so `[smoke]` can substitute the
/// value list while keeping the field, name, scale and seed coupling.
#[derive(Clone, Debug)]
struct AxisSpec {
    name: String,
    field: AxisField,
    values: Values,
    /// Multiplier applied to integer values before they hit the field
    /// (labels keep the raw value) — `backlog_pad` in KB, for example.
    scale: u64,
    seed: Option<SeedExpr>,
    /// `gst_ms`/`dup_ms`/`reorder_ms` only: the faulted process.
    process: u32,
    /// `gst_ms` only: the extra pre-GST one-way latency.
    extra_ms: u64,
    /// `reorder_ms` only: the per-message jitter bound.
    jitter_ms: u64,
}

impl AxisSpec {
    /// Builds the harness [`Axis`] over `values` (the spec's own list,
    /// or the smoke replacement).
    fn build(&self, values: &Values) -> Axis {
        let mut a = Axis::new(self.name.clone());
        match values {
            Values::Kinds(kinds) => {
                for &k in kinds {
                    a = a.value(k.to_string(), move |s| s.set_kind(k));
                }
            }
            Values::Schemes(schemes) => {
                for &sc in schemes {
                    a = a.value(sc.to_string(), move |s| s.knobs.scheme = sc);
                }
            }
            Values::Floats(rates) => {
                for &r in rates {
                    a = a.value(format!("{r}"), move |s| {
                        for c in &mut s.clients {
                            c.rate_per_sec = r;
                        }
                    });
                }
            }
            Values::Ints(ints) => {
                let (field, scale, seed) = (self.field, self.scale, self.seed);
                let (process, extra_ms, jitter_ms) = (self.process, self.extra_ms, self.jitter_ms);
                for &v in ints {
                    a = a.value(v.to_string(), move |s| {
                        apply_int_axis(
                            field,
                            v.saturating_mul(scale),
                            process,
                            extra_ms,
                            jitter_ms,
                            s,
                        );
                        if let Some(e) = seed {
                            s.knobs.seed = e.eval(v, s.knobs.f);
                        }
                    });
                }
            }
        }
        a
    }
}

/// Writes one integer axis value into its scenario field — mirroring the
/// canned in-code axes patch for patch.
fn apply_int_axis(
    field: AxisField,
    v: u64,
    process: u32,
    extra_ms: u64,
    jitter_ms: u64,
    s: &mut Scenario,
) {
    match field {
        AxisField::F => s.knobs.f = v as u32,
        AxisField::IntervalMs => s.knobs.batching_interval = SimDuration::from_ms(v),
        AxisField::Shards => s.shards = v as usize,
        AxisField::Clients => {
            let proto = s
                .clients
                .first()
                .copied()
                .unwrap_or_else(|| ClientLoad::constant(100.0, 100));
            s.clients = vec![proto; v as usize];
        }
        AxisField::BacklogPad => s.knobs.backlog_pad = v as usize,
        AxisField::Seed => s.knobs.seed = v,
        AxisField::WorldWorkers => s.world_workers = v as usize,
        AxisField::GstMs => {
            // GST at origin means the network is timely throughout; any
            // later GST scripts a delay-until-GST window on the chosen
            // process, replacing the fault plan.
            s.faults = if v == 0 {
                Vec::new()
            } else {
                vec![ScenarioFault::delay_until(
                    ProcessId(process),
                    SimTime::ZERO,
                    SimTime::from_ms(v),
                    SimDuration::from_ms(extra_ms),
                )]
            };
        }
        AxisField::DupMs => {
            // 0 means no duplication; any later bound scripts a
            // duplicate window `[0, v)` on the chosen process, replacing
            // the fault plan (the gst_ms convention).
            s.faults = if v == 0 {
                Vec::new()
            } else {
                vec![ScenarioFault::duplicate_until(
                    ProcessId(process),
                    SimTime::ZERO,
                    SimTime::from_ms(v),
                )]
            };
        }
        AxisField::ReorderMs => {
            s.faults = if v == 0 {
                Vec::new()
            } else {
                vec![ScenarioFault::reorder_until(
                    ProcessId(process),
                    SimTime::ZERO,
                    SimTime::from_ms(v),
                    SimDuration::from_ms(jitter_ms),
                )]
            };
        }
        AxisField::Kind | AxisField::Scheme | AxisField::Rate => {
            unreachable!("non-integer axis fields never reach apply_int_axis")
        }
    }
}

/// The `[smoke]` reduction: scenario/window overrides (re-applied over
/// the base), replacement value lists for named axes, and an optional
/// replacement seed set.
#[derive(Clone, Debug)]
struct Smoke {
    entries: Vec<RawEntry>,
    axis_values: Vec<(usize, Values)>,
    seeds: Option<Vec<u64>>,
}

impl Spec {
    /// Parses a spec file. The error names the offending line.
    pub fn parse(text: &str) -> Result<Spec, SpecError> {
        let sections = split_sections(text)?;
        check_singletons(&sections)?;

        let scenario_section = sections
            .iter()
            .find(|s| s.name == "scenario")
            .ok_or_else(|| SpecError::new(0, SpecErrorKind::MissingScenarioSection))?;
        let mut base = build_base_scenario(scenario_section)?;
        if let Some(window) = sections.iter().find(|s| s.name == "window") {
            apply_window_section(&mut base, window)?;
        }
        for client in sections.iter().filter(|s| s.name == "client") {
            let (load, count) = build_client(client)?;
            base.clients.extend(std::iter::repeat_n(load, count));
        }
        for fault in sections.iter().filter(|s| s.name == "fault") {
            base.faults.push(build_fault(fault)?);
        }

        let mut axes = Vec::new();
        for section in sections.iter().filter(|s| s.name == "axis") {
            let axis = build_axis(section)?;
            if axes.iter().any(|a: &AxisSpec| a.name == axis.name) {
                return Err(SpecError::new(
                    section.line,
                    SpecErrorKind::DuplicateAxis { name: axis.name },
                ));
            }
            axes.push(axis);
        }

        let mut seeds = Vec::new();
        if let Some(grid) = sections.iter().find(|s| s.name == "grid") {
            for e in &grid.entries {
                match e.key.as_str() {
                    "seeds" => seeds = parse_seed_list(e)?,
                    _ => return Err(unknown_key(grid, e)),
                }
            }
        }

        let mut title = None;
        let mut oracle = None;
        let mut verdict = None;
        if let Some(meta) = sections.iter().find(|s| s.name == "meta") {
            for e in &meta.entries {
                match e.key.as_str() {
                    "title" => title = Some(e.value.clone()),
                    "oracle" => oracle = Some(e.value.clone()),
                    "verdict" => {
                        verdict = Some(match e.value.to_ascii_lowercase().as_str() {
                            "pass" => Verdict::Pass,
                            "violation" => Verdict::Violation,
                            _ => return Err(bad_value(e, "`pass` or `violation`")),
                        })
                    }
                    _ => return Err(unknown_key(meta, e)),
                }
            }
        }

        let smoke = sections
            .iter()
            .find(|s| s.name == "smoke")
            .map(|s| build_smoke(s, &base, &axes))
            .transpose()?;

        let trace = sections
            .iter()
            .find(|s| s.name == "trace")
            .map(build_trace)
            .transpose()?;

        Ok(Spec {
            title,
            oracle,
            verdict,
            base,
            trace,
            axes,
            seeds,
            smoke,
        })
    }

    /// True when the spec carries a `[smoke]` reduction.
    pub fn has_smoke(&self) -> bool {
        self.smoke.is_some()
    }

    /// The declared axis names, in file (= patch) order.
    pub fn axis_names(&self) -> impl Iterator<Item = &str> {
        self.axes.iter().map(|a| a.name.as_str())
    }

    /// Number of points the lowered grid expands to.
    pub fn len(&self, smoke: bool) -> usize {
        let axis_len = |i: usize, a: &AxisSpec| {
            if smoke {
                if let Some(sm) = &self.smoke {
                    if let Some((_, vals)) = sm.axis_values.iter().find(|(j, _)| *j == i) {
                        return vals.len();
                    }
                }
            }
            a.values.len()
        };
        let points: usize = self
            .axes
            .iter()
            .enumerate()
            .map(|(i, a)| axis_len(i, a))
            .product();
        let seeds = if smoke {
            self.smoke
                .as_ref()
                .and_then(|sm| sm.seeds.as_ref())
                .unwrap_or(&self.seeds)
                .len()
        } else {
            self.seeds.len()
        };
        points * seeds.max(1)
    }

    /// True when the grid expands to no points.
    pub fn is_empty(&self, smoke: bool) -> bool {
        self.len(smoke) == 0
    }

    /// Lowers the spec onto a [`SweepGrid`]. With `smoke`, the
    /// `[smoke]` overrides are applied first (an error if the spec
    /// declares none).
    pub fn grid(&self, smoke: bool) -> Result<SweepGrid, SpecError> {
        let mut base = self.base.clone();
        let mut values: Vec<&Values> = self.axes.iter().map(|a| &a.values).collect();
        let mut seeds = &self.seeds;
        if smoke {
            let sm = self
                .smoke
                .as_ref()
                .ok_or_else(|| SpecError::new(0, SpecErrorKind::NoSmokeSection))?;
            // Entries were validated against a clone of the base at parse
            // time, so re-application cannot fail; propagate anyway
            // rather than unwrap.
            for e in &sm.entries {
                apply_smoke_entry(&mut base, e)?;
            }
            for (i, vals) in &sm.axis_values {
                values[*i] = vals;
            }
            if let Some(s) = &sm.seeds {
                seeds = s;
            }
        }
        let mut grid = SweepGrid::new(base);
        for (axis, vals) in self.axes.iter().zip(values) {
            grid = grid.axis(axis.build(vals));
        }
        if !seeds.is_empty() {
            grid = grid.seeds(seeds);
        }
        Ok(grid)
    }
}

fn check_singletons(sections: &[RawSection]) -> Result<(), SpecError> {
    for name in ["meta", "scenario", "window", "grid", "smoke", "trace"] {
        let mut seen: Option<usize> = None;
        for s in sections.iter().filter(|s| s.name == name) {
            if let Some(first_line) = seen {
                return Err(SpecError::new(
                    s.line,
                    SpecErrorKind::DuplicateSection {
                        section: name.to_string(),
                        first_line,
                    },
                ));
            }
            seen = Some(s.line);
        }
    }
    Ok(())
}

fn unknown_key(section: &RawSection, entry: &RawEntry) -> SpecError {
    SpecError::new(
        entry.line,
        SpecErrorKind::UnknownKey {
            section: section.name.clone(),
            key: entry.key.clone(),
        },
    )
}

fn bad_value(entry: &RawEntry, expected: &'static str) -> SpecError {
    SpecError::new(
        entry.line,
        SpecErrorKind::BadValue {
            key: entry.key.clone(),
            value: entry.value.clone(),
            expected,
        },
    )
}

fn parse_u64(entry: &RawEntry) -> Result<u64, SpecError> {
    entry
        .value
        .parse()
        .map_err(|_| bad_value(entry, "a non-negative integer"))
}

fn parse_u32(entry: &RawEntry) -> Result<u32, SpecError> {
    entry
        .value
        .parse()
        .map_err(|_| bad_value(entry, "a non-negative integer"))
}

fn parse_usize(entry: &RawEntry) -> Result<usize, SpecError> {
    entry
        .value
        .parse()
        .map_err(|_| bad_value(entry, "a non-negative integer"))
}

fn parse_f64(entry: &RawEntry) -> Result<f64, SpecError> {
    entry
        .value
        .parse()
        .map_err(|_| bad_value(entry, "a number"))
}

fn parse_bool(entry: &RawEntry) -> Result<bool, SpecError> {
    match entry.value.to_ascii_lowercase().as_str() {
        "on" | "true" | "yes" => Ok(true),
        "off" | "false" | "no" => Ok(false),
        _ => Err(bad_value(entry, "one of on/off/true/false")),
    }
}

fn parse_kind(entry: &RawEntry, token: &str) -> Result<ProtocolKind, SpecError> {
    ProtocolKind::ALL
        .into_iter()
        .find(|k| k.to_string().eq_ignore_ascii_case(token.trim()))
        .ok_or_else(|| bad_value(entry, "a protocol kind (SC, SCR, BFT, CT)"))
}

/// Every scheme the crypto crate defines, by its display name.
const SCHEMES: [SchemeId; 5] = [
    SchemeId::Md5Rsa1024,
    SchemeId::Md5Rsa1536,
    SchemeId::Sha1Dsa1024,
    SchemeId::Sha256Rsa2048,
    SchemeId::NoCrypto,
];

fn parse_scheme(entry: &RawEntry, token: &str) -> Result<SchemeId, SpecError> {
    SCHEMES
        .into_iter()
        .find(|s| s.to_string().eq_ignore_ascii_case(token.trim()))
        .ok_or_else(|| {
            bad_value(
                entry,
                "a crypto scheme (MD5+RSA-1024, MD5+RSA-1536, SHA1+DSA-1024, \
                 SHA256+RSA-2048, no-crypto)",
            )
        })
}

fn parse_router(entry: &RawEntry) -> Result<RouterPolicy, SpecError> {
    let normalized = entry.value.replace(',', " ");
    let mut tokens = normalized.split_whitespace();
    let policy = match tokens.next() {
        Some("hash") => RouterPolicy::Hash,
        Some("even_ranges") => RouterPolicy::EvenRanges,
        Some("ranges") => {
            let mut ranges = Vec::new();
            for tok in tokens.by_ref() {
                let Some((lo, hi)) = tok.split_once("..=") else {
                    return Err(bad_value(entry, ROUTER_EXPECTED));
                };
                let lo = lo
                    .parse::<u64>()
                    .map_err(|_| bad_value(entry, ROUTER_EXPECTED))?;
                let hi = if hi.eq_ignore_ascii_case("max") {
                    u64::MAX
                } else {
                    hi.parse::<u64>()
                        .map_err(|_| bad_value(entry, ROUTER_EXPECTED))?
                };
                ranges.push((lo, hi));
            }
            if ranges.is_empty() {
                return Err(SpecError::new(
                    entry.line,
                    SpecErrorKind::EmptyValues {
                        key: entry.key.clone(),
                    },
                ));
            }
            return Ok(RouterPolicy::Ranges(ranges));
        }
        _ => return Err(bad_value(entry, ROUTER_EXPECTED)),
    };
    if tokens.next().is_some() {
        return Err(bad_value(entry, ROUTER_EXPECTED));
    }
    Ok(policy)
}

const ROUTER_EXPECTED: &str =
    "`hash`, `even_ranges`, or `ranges <lo>..=<hi> ...` (hi may be `max`)";

/// Splits a comma-separated value list into trimmed non-empty tokens.
/// Lowers a `[trace]` section onto a [`TraceConfig`]:
///
/// ```text
/// [trace]
/// enable = on          # default on; off parses but filters everything
/// nodes  = 0, 1, 2     # optional: keep only these global node indices
/// phases = order, commit  # optional: keep only these record names
/// sample = 10          # optional: keep every 10th dispatch/deliver
/// ```
fn build_trace(section: &RawSection) -> Result<TraceConfig, SpecError> {
    let mut config = TraceConfig::default();
    for e in &section.entries {
        match e.key.as_str() {
            "enable" => config.enabled = parse_bool(e)?,
            "nodes" => {
                let mut nodes = Vec::new();
                for t in split_list(&e.value) {
                    nodes.push(
                        t.parse::<usize>()
                            .map_err(|_| bad_value(e, "a list of node indices"))?,
                    );
                }
                if nodes.is_empty() {
                    return Err(bad_value(e, "a non-empty list of node indices"));
                }
                config.nodes = Some(nodes);
            }
            "phases" => {
                let phases: Vec<String> = split_list(&e.value)
                    .into_iter()
                    .map(str::to_string)
                    .collect();
                if phases.is_empty() {
                    return Err(bad_value(e, "a non-empty list of record names"));
                }
                config.phases = Some(phases);
            }
            "sample" => {
                let sample = parse_u64(e)?;
                if sample == 0 {
                    return Err(bad_value(e, "a positive sampling interval (>= 1)"));
                }
                config.sample = sample;
            }
            _ => return Err(unknown_key(section, e)),
        }
    }
    Ok(config)
}

fn split_list(value: &str) -> Vec<&str> {
    value
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect()
}

/// A seed list is a replication factor, not a key space: anything past
/// this is a typo (`0..=18446744073709551615`) that must not OOM the
/// parser materializing it.
const MAX_SEEDS: u64 = 65_536;

fn parse_seed_list(entry: &RawEntry) -> Result<Vec<u64>, SpecError> {
    const EXPECTED: &str =
        "a seed list (integers and `lo..=hi` ranges, comma-separated; at most 65536 seeds)";
    let mut seeds = Vec::new();
    for tok in split_list(&entry.value) {
        if let Some((lo, hi)) = tok.split_once("..=") {
            let lo = lo.parse::<u64>().map_err(|_| bad_value(entry, EXPECTED))?;
            let hi = hi.parse::<u64>().map_err(|_| bad_value(entry, EXPECTED))?;
            if hi < lo || hi - lo >= MAX_SEEDS {
                return Err(bad_value(entry, EXPECTED));
            }
            seeds.extend(lo..=hi);
        } else {
            seeds.push(tok.parse::<u64>().map_err(|_| bad_value(entry, EXPECTED))?);
        }
        if seeds.len() as u64 > MAX_SEEDS {
            return Err(bad_value(entry, EXPECTED));
        }
    }
    if seeds.is_empty() {
        return Err(SpecError::new(
            entry.line,
            SpecErrorKind::EmptyValues {
                key: entry.key.clone(),
            },
        ));
    }
    Ok(seeds)
}

/// Applies one `[scenario]` key. `Ok(false)` means the key is not a
/// scenario key (the caller decides whether that is an error).
fn apply_scenario_key(s: &mut Scenario, entry: &RawEntry) -> Result<bool, SpecError> {
    match entry.key.as_str() {
        "kind" => s.set_kind(parse_kind(entry, &entry.value)?),
        "f" => s.knobs.f = parse_u32(entry)?,
        "scheme" => s.knobs.scheme = parse_scheme(entry, &entry.value)?,
        "seed" => s.knobs.seed = parse_u64(entry)?,
        "interval_ms" => s.knobs.batching_interval = SimDuration::from_ms(parse_u64(entry)?),
        "batch_max_bytes" => s.knobs.batch_max_bytes = parse_usize(entry)?,
        "order_timeout_ms" => s.knobs.order_timeout = SimDuration::from_ms(parse_u64(entry)?),
        "heartbeat_period_ms" => s.knobs.heartbeat_period = SimDuration::from_ms(parse_u64(entry)?),
        "heartbeat_misses" => s.knobs.heartbeat_misses = parse_u32(entry)?,
        "recovery_beats" => s.knobs.recovery_beats = parse_u32(entry)?,
        "checkpoint_interval" => s.knobs.checkpoint_interval = parse_u64(entry)?,
        "backlog_pad" => s.knobs.backlog_pad = parse_usize(entry)?,
        "time_checks" => s.knobs.time_checks = parse_bool(entry)?,
        "request_timeout_ms" => {
            s.knobs.request_timeout = if entry.value.eq_ignore_ascii_case("none") {
                None
            } else {
                Some(SimDuration::from_ms(parse_u64(entry)?))
            }
        }
        "shards" => s.shards = parse_usize(entry)?,
        "router" => s.router = parse_router(entry)?,
        "world_workers" => {
            // 0 is the programmatic "legacy path" default and stays
            // unreachable from specs, same as from the CLI flag.
            s.world_workers = match parse_usize(entry)? {
                0 => return Err(bad_value(entry, "a positive worker count (>= 1)")),
                w => w,
            }
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Applies one `window.`-prefixed or bare window key to the scenario's
/// window. `Ok(false)` means the key is not a window key.
fn apply_window_key(s: &mut Scenario, entry: &RawEntry) -> Result<bool, SpecError> {
    let key = entry.key.strip_prefix("window.").unwrap_or(&entry.key);
    match key {
        "warmup_s" => s.window.warmup_s = parse_u64(entry)?,
        "run_s" => s.window.run_s = parse_u64(entry)?,
        "drain_s" => s.window.drain_s = parse_u64(entry)?,
        _ => return Ok(false),
    }
    Ok(true)
}

fn build_base_scenario(section: &RawSection) -> Result<Scenario, SpecError> {
    let kind_entry = section.require("kind")?;
    let kind = parse_kind(kind_entry, &kind_entry.value)?;
    let mut s = Scenario::new(kind);
    // A spec's client set is what its [client] sections say, nothing
    // implicit: start from the empty set (Scenario::new already does).
    for e in &section.entries {
        if !apply_scenario_key(&mut s, e)? {
            return Err(unknown_key(section, e));
        }
    }
    Ok(s)
}

/// `[window]` sections use the bare keys (`warmup_s = 2`).
fn apply_window_section(s: &mut Scenario, section: &RawSection) -> Result<(), SpecError> {
    for e in &section.entries {
        if !apply_window_key(s, e)? {
            return Err(unknown_key(section, e));
        }
    }
    Ok(())
}

fn build_client(section: &RawSection) -> Result<(ClientLoad, usize), SpecError> {
    let mut load = ClientLoad::constant(0.0, 100);
    let mut count = 1usize;
    let mut have_rate = false;
    for e in &section.entries {
        match e.key.as_str() {
            "count" => count = parse_usize(e)?,
            "rate" => {
                load.rate_per_sec = parse_f64(e)?;
                have_rate = true;
            }
            "size" => load.request_size = parse_usize(e)?,
            "arrival" => {
                load.arrival = match e.value.to_ascii_lowercase().as_str() {
                    "constant" => Arrival::Constant,
                    "poisson" => Arrival::Poisson,
                    _ => return Err(bad_value(e, "`constant` or `poisson`")),
                }
            }
            "load" => {
                load.load = match e.value.to_ascii_lowercase().as_str() {
                    "global" => ShardLoad::Global,
                    "per_shard" => ShardLoad::PerShard,
                    _ => return Err(bad_value(e, "`global` or `per_shard`")),
                }
            }
            "population" => {
                load.population = match parse_usize(e)? {
                    0 => return Err(bad_value(e, "a positive client population (>= 1)")),
                    p => p,
                }
            }
            _ => return Err(unknown_key(section, e)),
        }
    }
    if !have_rate {
        return Err(section.require("rate").unwrap_err());
    }
    Ok((load, count))
}

fn build_fault(section: &RawSection) -> Result<ScenarioFault, SpecError> {
    let kind_entry = section.require("kind")?;
    let process = ProcessId(parse_u32(section.require("process")?)?);
    let shard = match section.get("shard") {
        Some(e) => parse_usize(e)?,
        None => 0,
    };
    // Which keys each fault kind reads; anything else in the section is
    // rejected as not applicable so a typo cannot silently drop a knob.
    let (allowed, reason): (&[&str], &'static str) = match kind_entry.value.as_str() {
        "crash" => (&["at_ms"], "a `crash` fault takes only `at_ms`"),
        "mute" => (
            &["from_ms", "until_ms"],
            "a `mute` fault takes only `from_ms`/`until_ms`",
        ),
        "delay" => (
            &["from_ms", "until_ms", "extra_ms"],
            "a `delay` fault takes only `from_ms`/`until_ms`/`extra_ms`",
        ),
        "duplicate" => (
            &["from_ms", "until_ms"],
            "a `duplicate` fault takes only `from_ms`/`until_ms`",
        ),
        "reorder" => (
            &["from_ms", "until_ms", "jitter_ms"],
            "a `reorder` fault takes only `from_ms`/`until_ms`/`jitter_ms`",
        ),
        "corrupt_order" => (&["seq"], "a `corrupt_order` fault takes only `seq`"),
        _ => {
            return Err(bad_value(
                kind_entry,
                "a fault kind (crash, mute, delay, duplicate, reorder, corrupt_order)",
            ))
        }
    };
    for e in &section.entries {
        let common = matches!(e.key.as_str(), "kind" | "process" | "shard");
        if !common && !allowed.contains(&e.key.as_str()) {
            if matches!(
                e.key.as_str(),
                "at_ms" | "from_ms" | "until_ms" | "extra_ms" | "jitter_ms" | "seq"
            ) {
                return Err(SpecError::new(
                    e.line,
                    SpecErrorKind::KeyNotApplicable {
                        key: e.key.clone(),
                        reason,
                    },
                ));
            }
            return Err(unknown_key(section, e));
        }
    }
    let window = |section: &RawSection| -> Result<(SimTime, Option<SimTime>), SpecError> {
        let from_ms = match section.get("from_ms") {
            Some(e) => parse_u64(e)?,
            None => 0,
        };
        let until = match section.get("until_ms") {
            Some(e) => {
                let until_ms = parse_u64(e)?;
                if until_ms <= from_ms {
                    return Err(SpecError::new(
                        e.line,
                        SpecErrorKind::InvertedFaultWindow { from_ms, until_ms },
                    ));
                }
                Some(SimTime::from_ms(until_ms))
            }
            None => None,
        };
        Ok((SimTime::from_ms(from_ms), until))
    };
    let fault = match kind_entry.value.as_str() {
        "crash" => {
            let at = SimTime::from_ms(parse_u64(section.require("at_ms")?)?);
            ScenarioFault::crash(process, at)
        }
        "mute" => {
            let (from, until) = window(section)?;
            ScenarioFault {
                shard: 0,
                process,
                kind: sofb_harness::scenario::ScenarioFaultKind::Mute { from, until },
            }
        }
        "delay" => {
            let extra = SimDuration::from_ms(parse_u64(section.require("extra_ms")?)?);
            let (from, until) = window(section)?;
            ScenarioFault {
                shard: 0,
                process,
                kind: sofb_harness::scenario::ScenarioFaultKind::Delay { from, until, extra },
            }
        }
        "duplicate" => {
            let (from, until) = window(section)?;
            ScenarioFault {
                shard: 0,
                process,
                kind: sofb_harness::scenario::ScenarioFaultKind::Duplicate { from, until },
            }
        }
        "reorder" => {
            let jitter = SimDuration::from_ms(parse_u64(section.require("jitter_ms")?)?);
            let (from, until) = window(section)?;
            ScenarioFault {
                shard: 0,
                process,
                kind: sofb_harness::scenario::ScenarioFaultKind::Reorder {
                    from,
                    until,
                    jitter,
                },
            }
        }
        "corrupt_order" => {
            ScenarioFault::corrupt_order_at(process, SeqNo(parse_u64(section.require("seq")?)?))
        }
        _ => unreachable!("kind validated above"),
    };
    Ok(fault.on_shard(shard))
}

fn build_axis(section: &RawSection) -> Result<AxisSpec, SpecError> {
    let field_entry = section.require("field")?;
    let field = AxisField::from_key(&field_entry.value).ok_or_else(|| {
        bad_value(
            field_entry,
            "an axis field (kind, f, scheme, interval_ms, shards, clients, rate, \
             backlog_pad, seed, gst_ms, dup_ms, reorder_ms, world_workers)",
        )
    })?;
    let values_entry = section.require("values")?;
    let values = parse_axis_values(field, values_entry)?;
    let mut axis = AxisSpec {
        name: field.default_name().to_string(),
        field,
        values,
        scale: 1,
        seed: None,
        process: 0,
        extra_ms: 0,
        jitter_ms: 0,
    };
    for e in &section.entries {
        match e.key.as_str() {
            "field" | "values" => {}
            "name" => axis.name = e.value.clone(),
            "scale" => {
                if !field.is_int() {
                    return Err(SpecError::new(
                        e.line,
                        SpecErrorKind::KeyNotApplicable {
                            key: e.key.clone(),
                            reason: "`scale` applies only to integer-valued axes",
                        },
                    ));
                }
                axis.scale = parse_u64(e)?;
            }
            "seed" => {
                if !field.is_int() || field == AxisField::Seed {
                    return Err(SpecError::new(
                        e.line,
                        SpecErrorKind::KeyNotApplicable {
                            key: e.key.clone(),
                            reason: "seed coupling applies only to integer-valued axes \
                                     other than `seed` itself",
                        },
                    ));
                }
                axis.seed = Some(SeedExpr::parse(e)?);
            }
            "process" => {
                if !matches!(
                    field,
                    AxisField::GstMs | AxisField::DupMs | AxisField::ReorderMs
                ) {
                    return Err(SpecError::new(
                        e.line,
                        SpecErrorKind::KeyNotApplicable {
                            key: e.key.clone(),
                            reason: "`process` applies only to the fault-window axes \
                                     (`gst_ms`, `dup_ms`, `reorder_ms`)",
                        },
                    ));
                }
                axis.process = parse_u32(e)?;
            }
            "extra_ms" => {
                if field != AxisField::GstMs {
                    return Err(SpecError::new(
                        e.line,
                        SpecErrorKind::KeyNotApplicable {
                            key: e.key.clone(),
                            reason: "`extra_ms` applies only to the `gst_ms` axis",
                        },
                    ));
                }
                axis.extra_ms = parse_u64(e)?;
            }
            "jitter_ms" => {
                if field != AxisField::ReorderMs {
                    return Err(SpecError::new(
                        e.line,
                        SpecErrorKind::KeyNotApplicable {
                            key: e.key.clone(),
                            reason: "`jitter_ms` applies only to the `reorder_ms` axis",
                        },
                    ));
                }
                axis.jitter_ms = parse_u64(e)?;
            }
            _ => return Err(unknown_key(section, e)),
        }
    }
    if field == AxisField::GstMs && section.get("extra_ms").is_none() {
        return Err(section.require("extra_ms").unwrap_err());
    }
    if field == AxisField::ReorderMs && section.get("jitter_ms").is_none() {
        return Err(section.require("jitter_ms").unwrap_err());
    }
    Ok(axis)
}

fn parse_axis_values(field: AxisField, entry: &RawEntry) -> Result<Values, SpecError> {
    let tokens = split_list(&entry.value);
    if tokens.is_empty() {
        return Err(SpecError::new(
            entry.line,
            SpecErrorKind::EmptyValues {
                key: entry.key.clone(),
            },
        ));
    }
    Ok(match field {
        AxisField::Kind => Values::Kinds(
            tokens
                .iter()
                .map(|t| parse_kind(entry, t))
                .collect::<Result<_, _>>()?,
        ),
        AxisField::Scheme => Values::Schemes(
            tokens
                .iter()
                .map(|t| parse_scheme(entry, t))
                .collect::<Result<_, _>>()?,
        ),
        AxisField::Rate => Values::Floats(
            tokens
                .iter()
                .map(|t| {
                    t.parse::<f64>()
                        .map_err(|_| bad_value(entry, "a number list"))
                })
                .collect::<Result<_, _>>()?,
        ),
        _ => Values::Ints(
            tokens
                .iter()
                .map(|t| {
                    t.parse::<u64>()
                        .map_err(|_| bad_value(entry, "an integer list"))
                })
                .collect::<Result<_, _>>()?,
        ),
    })
}

/// Applies one validated `[smoke]` entry (scenario or `window.` key) to
/// the base scenario.
fn apply_smoke_entry(s: &mut Scenario, entry: &RawEntry) -> Result<(), SpecError> {
    if entry.key.starts_with("window.") {
        if apply_window_key(s, entry)? {
            return Ok(());
        }
    } else if apply_scenario_key(s, entry)? {
        return Ok(());
    }
    Err(SpecError::new(
        entry.line,
        SpecErrorKind::UnknownKey {
            section: "smoke".to_string(),
            key: entry.key.clone(),
        },
    ))
}

fn build_smoke(
    section: &RawSection,
    base: &Scenario,
    axes: &[AxisSpec],
) -> Result<Smoke, SpecError> {
    let mut smoke = Smoke {
        entries: Vec::new(),
        axis_values: Vec::new(),
        seeds: None,
    };
    // Validate scenario/window overrides now, against a scratch copy, so
    // `--smoke` failures surface at load with their line numbers.
    let mut scratch = base.clone();
    for e in &section.entries {
        if let Some(axis_name) = e.key.strip_prefix("axis.") {
            let Some((i, axis)) = axes.iter().enumerate().find(|(_, a)| a.name == axis_name) else {
                return Err(SpecError::new(
                    e.line,
                    SpecErrorKind::UnknownAxisRef {
                        name: axis_name.to_string(),
                    },
                ));
            };
            let values = parse_axis_values(axis.field, e)?;
            smoke.axis_values.push((i, values));
        } else if e.key == "seeds" {
            smoke.seeds = Some(parse_seed_list(e)?);
        } else {
            apply_smoke_entry(&mut scratch, e)?;
            smoke.entries.push(e.clone());
        }
    }
    Ok(smoke)
}
