//! Typed spec-language errors.
//!
//! Every defect a `.scn` file can carry maps to one [`SpecErrorKind`]
//! stamped with the 1-based line number it was detected on, so authors
//! can fix a spec from the message alone — the same contract
//! `ScenarioError` gives for field-level defects once the spec has been
//! lowered.

use std::error::Error;
use std::fmt;

/// A rejected spec file: what went wrong, and on which line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number the defect was detected on.
    pub line: usize,
    /// The defect.
    pub kind: SpecErrorKind,
}

impl SpecError {
    pub(crate) fn new(line: usize, kind: SpecErrorKind) -> Self {
        SpecError { line, kind }
    }
}

/// The defect classes a `.scn` file can carry.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecErrorKind {
    /// A `[section]` header naming no known section.
    UnknownSection {
        /// The unrecognized section name.
        section: String,
    },
    /// A second instance of a section that must appear at most once.
    DuplicateSection {
        /// The repeated section name.
        section: String,
        /// Line of the first instance.
        first_line: usize,
    },
    /// A `key = value` line before any `[section]` header.
    KeyOutsideSection {
        /// The stray key.
        key: String,
    },
    /// A non-blank, non-comment line that is neither a section header
    /// nor `key = value`.
    MalformedLine,
    /// A key the enclosing section does not define.
    UnknownKey {
        /// The enclosing section.
        section: String,
        /// The unrecognized key.
        key: String,
    },
    /// The same key given twice within one section instance.
    DuplicateKey {
        /// The repeated key.
        key: String,
        /// Line of the first assignment.
        first_line: usize,
    },
    /// A value that does not parse as what its key needs.
    BadValue {
        /// The key being assigned.
        key: String,
        /// The rejected value text.
        value: String,
        /// What the key expects.
        expected: &'static str,
    },
    /// A required key the section never assigned (reported at the
    /// section header's line).
    MissingKey {
        /// The enclosing section.
        section: String,
        /// The missing key.
        key: &'static str,
    },
    /// A key that exists but does not apply in this context (e.g.
    /// `extra_ms` on a `crash` fault, `scale` on the `kind` axis).
    KeyNotApplicable {
        /// The inapplicable key.
        key: String,
        /// Why it does not apply here.
        reason: &'static str,
    },
    /// A fault window whose `until_ms` does not exceed its `from_ms`
    /// (reported at the `until_ms` line).
    InvertedFaultWindow {
        /// Window start (ms).
        from_ms: u64,
        /// Window end (ms) — ≤ start, the defect.
        until_ms: u64,
    },
    /// Two `[axis]` sections carrying the same name — smoke overrides
    /// and point labels both need axis names to be unique.
    DuplicateAxis {
        /// The repeated axis name.
        name: String,
    },
    /// A `[smoke]` `axis.<name>` override naming no declared axis.
    UnknownAxisRef {
        /// The dangling axis name.
        name: String,
    },
    /// A list-valued key given an empty list.
    EmptyValues {
        /// The key holding the empty list.
        key: String,
    },
    /// The file declares no `[scenario]` section at all.
    MissingScenarioSection,
    /// `--smoke` was requested but the spec has no `[smoke]` section.
    NoSmokeSection,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Line 0 marks whole-file defects (no single line to blame).
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            SpecErrorKind::UnknownSection { section } => {
                write!(f, "unknown section `[{section}]`")
            }
            SpecErrorKind::DuplicateSection {
                section,
                first_line,
            } => write!(
                f,
                "duplicate section `[{section}]` (first declared on line {first_line})"
            ),
            SpecErrorKind::KeyOutsideSection { key } => {
                write!(f, "key `{key}` appears before any [section] header")
            }
            SpecErrorKind::MalformedLine => {
                write!(f, "expected `[section]` or `key = value`")
            }
            SpecErrorKind::UnknownKey { section, key } => {
                write!(f, "unknown key `{key}` in [{section}]")
            }
            SpecErrorKind::DuplicateKey { key, first_line } => write!(
                f,
                "duplicate key `{key}` (first assigned on line {first_line})"
            ),
            SpecErrorKind::BadValue {
                key,
                value,
                expected,
            } => write!(f, "key `{key}`: `{value}` is not {expected}"),
            SpecErrorKind::MissingKey { section, key } => {
                write!(f, "section [{section}] is missing required key `{key}`")
            }
            SpecErrorKind::KeyNotApplicable { key, reason } => {
                write!(f, "key `{key}` does not apply here: {reason}")
            }
            SpecErrorKind::InvertedFaultWindow { from_ms, until_ms } => write!(
                f,
                "fault window end {until_ms} ms must exceed start {from_ms} ms"
            ),
            SpecErrorKind::DuplicateAxis { name } => {
                write!(f, "duplicate axis `{name}` (axis names must be unique)")
            }
            SpecErrorKind::UnknownAxisRef { name } => {
                write!(f, "smoke override names unknown axis `{name}`")
            }
            SpecErrorKind::EmptyValues { key } => {
                write!(f, "key `{key}` needs at least one value")
            }
            SpecErrorKind::MissingScenarioSection => {
                write!(f, "spec declares no [scenario] section")
            }
            SpecErrorKind::NoSmokeSection => {
                write!(f, "--smoke requested but the spec has no [smoke] section")
            }
        }
    }
}

impl Error for SpecError {}
