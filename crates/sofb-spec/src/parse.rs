//! The line-level layer of the spec language: raw sections.
//!
//! A `.scn` file is a sequence of `[section]` headers, `key = value`
//! assignments, `#` comment lines and blanks. This module turns the text
//! into [`RawSection`]s — names, entries and 1-based line numbers — and
//! rejects the purely lexical defects (unknown sections, malformed
//! lines, keys outside any section, duplicate keys within one section
//! instance). Everything semantic lives in [`crate::spec`].

use crate::error::{SpecError, SpecErrorKind};

/// The section names the language defines.
pub(crate) const SECTIONS: [&str; 9] = [
    "meta", "scenario", "window", "client", "fault", "axis", "grid", "smoke", "trace",
];

/// One `key = value` assignment.
#[derive(Clone, Debug)]
pub(crate) struct RawEntry {
    pub key: String,
    pub value: String,
    pub line: usize,
}

/// One `[section]` instance with its assignments, in file order.
#[derive(Clone, Debug)]
pub(crate) struct RawSection {
    pub name: String,
    pub line: usize,
    pub entries: Vec<RawEntry>,
}

impl RawSection {
    /// The entry assigning `key`, if any.
    pub fn get(&self, key: &str) -> Option<&RawEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// The entry assigning `key`, or a [`SpecErrorKind::MissingKey`]
    /// reported at the section header's line.
    pub fn require(&self, key: &'static str) -> Result<&RawEntry, SpecError> {
        self.get(key).ok_or_else(|| {
            SpecError::new(
                self.line,
                SpecErrorKind::MissingKey {
                    section: self.name.clone(),
                    key,
                },
            )
        })
    }
}

/// Splits a spec file into raw sections, checking the lexical rules.
pub(crate) fn split_sections(text: &str) -> Result<Vec<RawSection>, SpecError> {
    let mut sections: Vec<RawSection> = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[') {
            // A trailing comment after the header is unambiguous (nothing
            // legitimate follows the `]`), so `[axis]  # the f sweep` is
            // allowed; `key = value` lines take values verbatim instead.
            let Some((name, rest)) = inner.split_once(']') else {
                return Err(SpecError::new(line_no, SpecErrorKind::MalformedLine));
            };
            let rest = rest.trim();
            if !(rest.is_empty() || rest.starts_with('#')) {
                return Err(SpecError::new(line_no, SpecErrorKind::MalformedLine));
            }
            let name = name.trim().to_string();
            if !SECTIONS.contains(&name.as_str()) {
                return Err(SpecError::new(
                    line_no,
                    SpecErrorKind::UnknownSection { section: name },
                ));
            }
            sections.push(RawSection {
                name,
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(SpecError::new(line_no, SpecErrorKind::MalformedLine));
        };
        let key = key.trim().to_string();
        let value = value.trim().to_string();
        let Some(section) = sections.last_mut() else {
            return Err(SpecError::new(
                line_no,
                SpecErrorKind::KeyOutsideSection { key },
            ));
        };
        if let Some(first) = section.get(&key) {
            return Err(SpecError::new(
                line_no,
                SpecErrorKind::DuplicateKey {
                    key,
                    first_line: first.line,
                },
            ));
        }
        section.entries.push(RawEntry {
            key,
            value,
            line: line_no,
        });
    }
    Ok(sections)
}
