//! Parser unit tests: every scenario field and canned axis round-trips
//! to the exact in-code construction, and the rejection matrix pins the
//! reported line numbers.

use sofb_crypto::scheme::SchemeId;
use sofb_harness::scenario::{
    Axis, ClientLoad, RouterPolicy, Scenario, ScenarioFault, SweepGrid, Window,
};
use sofb_harness::{ProtocolKind, ScenarioFaultKind};
use sofb_proto::ids::{ProcessId, SeqNo};
use sofb_sim::time::{SimDuration, SimTime};

use sofb_sim::cpu::CpuModel;

use crate::{emit_spec, EmitError, Spec, SpecError, SpecErrorKind, Verdict};

/// Two grids expand to the same cells: same order, labels, seeds and
/// fully patched scenarios.
fn assert_cells_eq(spec_grid: &SweepGrid, code_grid: &SweepGrid) {
    let a = spec_grid.cells().expect("spec grid expands");
    let b = code_grid.cells().expect("in-code grid expands");
    assert_eq!(a.len(), b.len(), "cell counts differ");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.index, y.index);
        assert_eq!(x.labels, y.labels, "labels differ at index {}", x.index);
        assert_eq!(x.seed, y.seed, "seeds differ at index {}", x.index);
        assert_eq!(
            x.scenario, y.scenario,
            "scenarios differ at index {}",
            x.index
        );
    }
}

fn parse(text: &str) -> Spec {
    Spec::parse(text).expect("spec parses")
}

fn parse_err(text: &str) -> SpecError {
    Spec::parse(text).expect_err("spec must be rejected")
}

// --- scenario-field round-trips ---------------------------------------

#[test]
fn every_scenario_field_round_trips() {
    let spec = parse(
        "[scenario]\n\
         kind = SCR\n\
         f = 3\n\
         scheme = SHA1+DSA-1024\n\
         seed = 99\n\
         interval_ms = 250\n\
         batch_max_bytes = 2048\n\
         order_timeout_ms = 1500\n\
         heartbeat_period_ms = 75\n\
         heartbeat_misses = 6\n\
         recovery_beats = 5\n\
         checkpoint_interval = 128\n\
         backlog_pad = 4096\n\
         time_checks = off\n\
         request_timeout_ms = 900\n\
         shards = 2\n\
         router = even_ranges\n\
         world_workers = 3\n\
         [window]\n\
         warmup_s = 1\n\
         run_s = 9\n\
         drain_s = 3\n\
         [client]\n\
         count = 2\n\
         rate = 55.5\n\
         size = 256\n\
         arrival = poisson\n\
         load = per_shard\n\
         population = 4\n\
         [client]\n\
         rate = 10\n",
    );
    let mut want = Scenario::new(ProtocolKind::Scr)
        .f(3)
        .scheme(SchemeId::Sha1Dsa1024)
        .seed(99)
        .interval_ms(250)
        .order_timeout(SimDuration::from_ms(1_500))
        .backlog_pad(4096)
        .time_checks(false)
        .request_timeout(SimDuration::from_ms(900))
        .shards(2)
        .router(RouterPolicy::EvenRanges)
        .world_workers(3)
        .window(Window {
            warmup_s: 1,
            run_s: 9,
            drain_s: 3,
        })
        .clients(2, ClientLoad::poisson(55.5, 256).per_shard().population(4))
        .client(ClientLoad::constant(10.0, 100));
    want.knobs.batch_max_bytes = 2048;
    want.knobs.heartbeat_period = SimDuration::from_ms(75);
    want.knobs.heartbeat_misses = 6;
    want.knobs.recovery_beats = 5;
    want.knobs.checkpoint_interval = 128;
    assert_eq!(spec.base, want);
    assert_eq!(spec.base.validate(), Ok(()));
}

#[test]
fn every_fault_kind_round_trips() {
    let spec = parse(
        "[scenario]\n\
         kind = SC\n\
         shards = 2\n\
         [fault]\n\
         process = 1\n\
         kind = crash\n\
         at_ms = 3000\n\
         [fault]\n\
         process = 2\n\
         kind = mute\n\
         from_ms = 1000\n\
         until_ms = 2500\n\
         [fault]\n\
         shard = 1\n\
         process = 0\n\
         kind = delay\n\
         until_ms = 4000\n\
         extra_ms = 800\n\
         [fault]\n\
         process = 0\n\
         kind = corrupt_order\n\
         seq = 4\n\
         [fault]\n\
         process = 1\n\
         kind = duplicate\n\
         from_ms = 200\n\
         until_ms = 900\n\
         [fault]\n\
         process = 2\n\
         kind = reorder\n\
         from_ms = 100\n\
         until_ms = 600\n\
         jitter_ms = 40\n\
         [fault]\n\
         process = 3\n\
         kind = mute\n\
         from_ms = 500\n",
    );
    assert_eq!(
        spec.base.faults,
        vec![
            ScenarioFault::crash(ProcessId(1), SimTime::from_secs(3)),
            ScenarioFault::mute_until(ProcessId(2), SimTime::from_ms(1000), SimTime::from_ms(2500)),
            ScenarioFault::delay_until(
                ProcessId(0),
                SimTime::ZERO,
                SimTime::from_ms(4000),
                SimDuration::from_ms(800),
            )
            .on_shard(1),
            ScenarioFault::corrupt_order_at(ProcessId(0), SeqNo(4)),
            ScenarioFault::duplicate_until(
                ProcessId(1),
                SimTime::from_ms(200),
                SimTime::from_ms(900),
            ),
            ScenarioFault::reorder_until(
                ProcessId(2),
                SimTime::from_ms(100),
                SimTime::from_ms(600),
                SimDuration::from_ms(40),
            ),
            // An open-ended mute: from 500 ms, forever.
            ScenarioFault {
                shard: 0,
                process: ProcessId(3),
                kind: ScenarioFaultKind::Mute {
                    from: SimTime::from_ms(500),
                    until: None,
                },
            },
        ]
    );
}

#[test]
fn explicit_router_ranges_round_trip() {
    let spec = parse(
        "[scenario]\n\
         kind = CT\n\
         shards = 2\n\
         router = ranges 0..=9, 10..=max\n",
    );
    assert_eq!(
        spec.base.router,
        RouterPolicy::Ranges(vec![(0, 9), (10, u64::MAX)])
    );
}

#[test]
fn defaults_match_scenario_new() {
    let spec = parse("[scenario]\nkind = BFT\n");
    assert_eq!(spec.base, Scenario::new(ProtocolKind::Bft));
    assert!(!spec.has_smoke());
    assert_eq!(spec.len(false), 1);
}

// --- canned-axis round-trips ------------------------------------------

const BASE: &str = "[scenario]\n\
                    kind = SC\n\
                    f = 2\n\
                    time_checks = off\n\
                    [client]\n\
                    count = 3\n\
                    rate = 100\n";

fn base_scenario() -> Scenario {
    Scenario::bench(ProtocolKind::Sc).f(2)
}

fn spec_grid(axis_lines: &str) -> SweepGrid {
    parse(&format!("{BASE}{axis_lines}"))
        .grid(false)
        .expect("grid lowers")
}

#[test]
fn kind_axis_round_trips() {
    assert_cells_eq(
        &spec_grid("[axis]\nfield = kind\nvalues = SC, SCR, BFT, CT\n"),
        &SweepGrid::new(base_scenario()).axis(Axis::kinds(&ProtocolKind::ALL)),
    );
}

#[test]
fn resilience_axis_round_trips() {
    assert_cells_eq(
        &spec_grid("[axis]\nfield = f\nvalues = 2, 3, 4\n"),
        &SweepGrid::new(base_scenario()).axis(Axis::resiliences(&[2, 3, 4])),
    );
}

#[test]
fn scheme_axis_round_trips() {
    assert_cells_eq(
        &spec_grid("[axis]\nfield = scheme\nvalues = MD5+RSA-1024, MD5+RSA-1536, SHA1+DSA-1024\n"),
        &SweepGrid::new(base_scenario()).axis(Axis::schemes(&SchemeId::PAPER)),
    );
}

#[test]
fn interval_axis_round_trips() {
    assert_cells_eq(
        &spec_grid("[axis]\nfield = interval_ms\nvalues = 40, 100, 500\n"),
        &SweepGrid::new(base_scenario()).axis(Axis::intervals_ms(&[40, 100, 500])),
    );
}

#[test]
fn shard_axis_round_trips() {
    assert_cells_eq(
        &spec_grid("[axis]\nfield = shards\nvalues = 1, 2, 4\n"),
        &SweepGrid::new(base_scenario()).axis(Axis::shard_counts(&[1, 2, 4])),
    );
}

#[test]
fn client_count_axis_round_trips() {
    assert_cells_eq(
        &spec_grid("[axis]\nfield = clients\nvalues = 1, 3, 5\n"),
        &SweepGrid::new(base_scenario()).axis(Axis::client_counts(&[1, 3, 5])),
    );
}

#[test]
fn rate_axis_round_trips() {
    assert_cells_eq(
        &spec_grid("[axis]\nfield = rate\nvalues = 60, 120.5, 240\n"),
        &SweepGrid::new(base_scenario()).axis(Axis::rates_per_client(&[60.0, 120.5, 240.0])),
    );
}

#[test]
fn backlog_axis_with_name_and_scale_round_trips() {
    let mut pad_axis = Axis::new("backlog_kb");
    for kb in [1usize, 3, 5] {
        pad_axis = pad_axis.value(kb.to_string(), move |s| {
            s.knobs.backlog_pad = kb * 1024;
        });
    }
    assert_cells_eq(
        &spec_grid(
            "[axis]\nfield = backlog_pad\nname = backlog_kb\nscale = 1024\nvalues = 1, 3, 5\n",
        ),
        &SweepGrid::new(base_scenario()).axis(pad_axis),
    );
}

#[test]
fn seed_axis_round_trips() {
    let mut seed_axis = Axis::new("seed");
    for v in [5u64, 6, 7] {
        seed_axis = seed_axis.value(v.to_string(), move |s| s.knobs.seed = v);
    }
    assert_cells_eq(
        &spec_grid("[axis]\nfield = seed\nvalues = 5, 6, 7\n"),
        &SweepGrid::new(base_scenario()).axis(seed_axis),
    );
}

#[test]
fn gst_axis_round_trips() {
    let extra = SimDuration::from_ms(800);
    let mut gst_axis = Axis::new("gst_ms");
    for ms in [0u64, 1000, 3000] {
        gst_axis = gst_axis.value(ms.to_string(), move |s| {
            s.faults = if ms == 0 {
                Vec::new()
            } else {
                vec![ScenarioFault::delay_until(
                    ProcessId(0),
                    SimTime::ZERO,
                    SimTime::from_ms(ms),
                    extra,
                )]
            };
        });
    }
    assert_cells_eq(
        &spec_grid("[axis]\nfield = gst_ms\nvalues = 0, 1000, 3000\nextra_ms = 800\n"),
        &SweepGrid::new(base_scenario()).axis(gst_axis),
    );
}

#[test]
fn dup_axis_round_trips() {
    let mut dup_axis = Axis::new("dup_ms");
    for ms in [0u64, 2000] {
        dup_axis = dup_axis.value(ms.to_string(), move |s| {
            s.faults = if ms == 0 {
                Vec::new()
            } else {
                vec![ScenarioFault::duplicate_until(
                    ProcessId(1),
                    SimTime::ZERO,
                    SimTime::from_ms(ms),
                )]
            };
        });
    }
    assert_cells_eq(
        &spec_grid("[axis]\nfield = dup_ms\nvalues = 0, 2000\nprocess = 1\n"),
        &SweepGrid::new(base_scenario()).axis(dup_axis),
    );
}

#[test]
fn reorder_axis_round_trips() {
    let jitter = SimDuration::from_ms(40);
    let mut reorder_axis = Axis::new("reorder_ms");
    for ms in [0u64, 1500] {
        reorder_axis = reorder_axis.value(ms.to_string(), move |s| {
            s.faults = if ms == 0 {
                Vec::new()
            } else {
                vec![ScenarioFault::reorder_until(
                    ProcessId(2),
                    SimTime::ZERO,
                    SimTime::from_ms(ms),
                    jitter,
                )]
            };
        });
    }
    assert_cells_eq(
        &spec_grid("[axis]\nfield = reorder_ms\nvalues = 0, 1500\nprocess = 2\njitter_ms = 40\n"),
        &SweepGrid::new(base_scenario()).axis(reorder_axis),
    );
}

#[test]
fn interval_axis_with_seed_coupling_round_trips() {
    let mut interval_axis = Axis::new("interval_ms");
    for ms in [40u64, 100] {
        interval_axis = interval_axis.value(ms.to_string(), move |s| {
            s.knobs.batching_interval = SimDuration::from_ms(ms);
            s.knobs.seed = 242 + ms + u64::from(s.knobs.f);
        });
    }
    // The f axis runs first, so the coupling reads the patched f.
    assert_cells_eq(
        &spec_grid(
            "[axis]\nfield = f\nvalues = 2, 3\n\
             [axis]\nfield = interval_ms\nvalues = 40, 100\nseed = 242 + value + f\n",
        ),
        &SweepGrid::new(base_scenario())
            .axis(Axis::resiliences(&[2, 3]))
            .axis(interval_axis),
    );
}

#[test]
fn world_workers_axis_round_trips() {
    assert_cells_eq(
        &spec_grid("[axis]\nfield = world_workers\nvalues = 1, 2, 4\n"),
        &SweepGrid::new(base_scenario()).axis(Axis::world_workers(&[1, 2, 4])),
    );
}

#[test]
fn grid_seeds_replicate_points() {
    let spec = parse(&format!(
        "{BASE}[axis]\nfield = kind\nvalues = SC, CT\n[grid]\nseeds = 1000..=1002, 2000\n"
    ));
    let code = SweepGrid::new(base_scenario())
        .axis(Axis::kinds(&[ProtocolKind::Sc, ProtocolKind::Ct]))
        .seeds(&[1000, 1001, 1002, 2000]);
    assert_cells_eq(&spec.grid(false).unwrap(), &code);
    assert_eq!(spec.len(false), 8);
}

// --- smoke reduction --------------------------------------------------

#[test]
fn smoke_overrides_window_axes_and_seeds() {
    let spec = parse(&format!(
        "{BASE}[axis]\nfield = kind\nvalues = SC, SCR, BFT, CT\n\
         [axis]\nfield = rate\nvalues = 60, 120, 240\n\
         [grid]\nseeds = 1..=5\n\
         [smoke]\nwindow.warmup_s = 1\nwindow.run_s = 4\naxis.kind = SC\naxis.rate = 120\nseeds = 1\n"
    ));
    assert!(spec.has_smoke());
    assert_eq!(spec.len(false), 60);
    assert_eq!(spec.len(true), 1);
    let mut reduced = base_scenario();
    reduced.window.warmup_s = 1;
    reduced.window.run_s = 4;
    let code = SweepGrid::new(reduced)
        .axis(Axis::kinds(&[ProtocolKind::Sc]))
        .axis(Axis::rates_per_client(&[120.0]))
        .seeds(&[1]);
    assert_cells_eq(&spec.grid(true).unwrap(), &code);
    // The full-size grid is untouched by the smoke section.
    assert_eq!(spec.grid(false).unwrap().cells().unwrap().len(), 60);
}

#[test]
fn smoke_without_section_is_a_typed_error() {
    let spec = parse(BASE);
    let err = spec.grid(true).unwrap_err();
    assert_eq!(err.kind, SpecErrorKind::NoSmokeSection);
    assert!(err.to_string().contains("[smoke]"), "{err}");
}

// --- rejection matrix (line numbers pinned) ---------------------------

#[test]
fn unknown_key_names_the_line() {
    let err = parse_err("[scenario]\nkind = SC\ncolour = mauve\n");
    assert_eq!(err.line, 3);
    assert_eq!(
        err.kind,
        SpecErrorKind::UnknownKey {
            section: "scenario".into(),
            key: "colour".into()
        }
    );
    assert!(err.to_string().starts_with("line 3:"), "{err}");
}

#[test]
fn bad_enum_values_name_the_line() {
    let err = parse_err("[scenario]\nkind = PAXOS\n");
    assert_eq!(err.line, 2);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "kind"),
        "{err:?}"
    );

    let err = parse_err("[scenario]\nkind = SC\nscheme = ROT13\n");
    assert_eq!(err.line, 3);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "scheme"),
        "{err:?}"
    );

    let err = parse_err("[scenario]\nkind = SC\n[client]\nrate = 9\narrival = bursty\n");
    assert_eq!(err.line, 5);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "arrival"),
        "{err:?}"
    );

    let err = parse_err("[scenario]\nkind = SC\nrouter = nearest\n");
    assert_eq!(err.line, 3);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "router"),
        "{err:?}"
    );
}

/// Zero workers/members is the programmatic "unset" sentinel, never a
/// spec value: both reject at parse with the offending line.
#[test]
fn zero_world_workers_and_zero_population_are_rejected() {
    let err = parse_err("[scenario]\nkind = SC\nshards = 2\nworld_workers = 0\n");
    assert_eq!(err.line, 4);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "world_workers"),
        "{err:?}"
    );

    let err = parse_err("[scenario]\nkind = SC\n[client]\nrate = 9\npopulation = 0\n");
    assert_eq!(err.line, 5);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "population"),
        "{err:?}"
    );
}

#[test]
fn duplicate_section_names_both_lines() {
    let err = parse_err("[scenario]\nkind = SC\n\n[scenario]\nkind = CT\n");
    assert_eq!(err.line, 4);
    assert_eq!(
        err.kind,
        SpecErrorKind::DuplicateSection {
            section: "scenario".into(),
            first_line: 1
        }
    );
    assert!(err.to_string().contains("line 1"), "{err}");
}

#[test]
fn inverted_fault_window_names_the_until_line() {
    let err = parse_err(
        "[scenario]\nkind = BFT\n[fault]\nprocess = 0\nkind = mute\nfrom_ms = 3000\nuntil_ms = 2000\n",
    );
    assert_eq!(err.line, 7);
    assert_eq!(
        err.kind,
        SpecErrorKind::InvertedFaultWindow {
            from_ms: 3000,
            until_ms: 2000
        }
    );
}

#[test]
fn duplicate_key_names_both_lines() {
    let err = parse_err("[scenario]\nkind = SC\nf = 2\nf = 3\n");
    assert_eq!(err.line, 4);
    assert_eq!(
        err.kind,
        SpecErrorKind::DuplicateKey {
            key: "f".into(),
            first_line: 3
        }
    );
}

#[test]
fn section_headers_allow_trailing_comments_but_values_stay_verbatim() {
    let spec = parse("[scenario]  # the base point\nkind = SC\n");
    assert_eq!(spec.base.kind, ProtocolKind::Sc);
    // Junk after the `]` that is not a comment stays malformed.
    let err = parse_err("[scenario] extra\nkind = SC\n");
    assert_eq!(err.kind, SpecErrorKind::MalformedLine);
    // No inline comments on key lines: the value runs to end of line.
    let err = parse_err("[scenario]\nkind = SC # the fast one\n");
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "kind"),
        "{err:?}"
    );
}

#[test]
fn lexical_defects_name_the_line() {
    let err = parse_err("kind = SC\n");
    assert_eq!(err.line, 1);
    assert_eq!(
        err.kind,
        SpecErrorKind::KeyOutsideSection { key: "kind".into() }
    );

    let err = parse_err("[banquet]\n");
    assert_eq!(err.line, 1);
    assert_eq!(
        err.kind,
        SpecErrorKind::UnknownSection {
            section: "banquet".into()
        }
    );

    let err = parse_err("[scenario]\nkind = SC\njust some words\n");
    assert_eq!(err.line, 3);
    assert_eq!(err.kind, SpecErrorKind::MalformedLine);
}

#[test]
fn missing_required_keys_name_the_section_line() {
    let err = parse_err("[scenario]\nf = 2\n");
    assert_eq!(err.line, 1);
    assert_eq!(
        err.kind,
        SpecErrorKind::MissingKey {
            section: "scenario".into(),
            key: "kind"
        }
    );

    let err = parse_err("[scenario]\nkind = SC\n[client]\nsize = 100\n");
    assert_eq!(err.line, 3);
    assert_eq!(
        err.kind,
        SpecErrorKind::MissingKey {
            section: "client".into(),
            key: "rate"
        }
    );

    let err = parse_err("[scenario]\nkind = SC\n[axis]\nvalues = 1, 2\n");
    assert_eq!(err.line, 3);
    assert_eq!(
        err.kind,
        SpecErrorKind::MissingKey {
            section: "axis".into(),
            key: "field"
        }
    );

    let err = Spec::parse("").unwrap_err();
    assert_eq!(err.kind, SpecErrorKind::MissingScenarioSection);
}

#[test]
fn inapplicable_keys_are_rejected() {
    let err = parse_err("[scenario]\nkind = SC\n[axis]\nfield = kind\nvalues = SC\nscale = 4\n");
    assert_eq!(err.line, 6);
    assert!(
        matches!(err.kind, SpecErrorKind::KeyNotApplicable { ref key, .. } if key == "scale"),
        "{err:?}"
    );

    let err = parse_err(
        "[scenario]\nkind = SC\n[fault]\nprocess = 0\nkind = crash\nat_ms = 100\nextra_ms = 5\n",
    );
    assert_eq!(err.line, 7);
    assert!(
        matches!(err.kind, SpecErrorKind::KeyNotApplicable { ref key, .. } if key == "extra_ms"),
        "{err:?}"
    );

    // `jitter_ms` belongs to `reorder` faults (and the `reorder_ms`
    // axis) only.
    let err = parse_err(
        "[scenario]\nkind = SC\n[fault]\nprocess = 0\nkind = mute\nfrom_ms = 1\njitter_ms = 5\n",
    );
    assert_eq!(err.line, 7);
    assert!(
        matches!(err.kind, SpecErrorKind::KeyNotApplicable { ref key, .. } if key == "jitter_ms"),
        "{err:?}"
    );
    let err = parse_err(
        "[scenario]\nkind = SC\n[axis]\nfield = dup_ms\nvalues = 0, 100\njitter_ms = 5\n",
    );
    assert_eq!(err.line, 6);
    assert!(
        matches!(err.kind, SpecErrorKind::KeyNotApplicable { ref key, .. } if key == "jitter_ms"),
        "{err:?}"
    );

    // A `reorder` without its jitter bound is missing a required key.
    let err = parse_err("[scenario]\nkind = SC\n[fault]\nprocess = 0\nkind = reorder\n");
    assert_eq!(err.line, 3);
    assert_eq!(
        err.kind,
        SpecErrorKind::MissingKey {
            section: "fault".into(),
            key: "jitter_ms"
        }
    );
    let err = parse_err("[scenario]\nkind = SC\n[axis]\nfield = reorder_ms\nvalues = 100\n");
    assert_eq!(err.line, 3);
    assert_eq!(
        err.kind,
        SpecErrorKind::MissingKey {
            section: "axis".into(),
            key: "jitter_ms"
        }
    );
}

// --- [meta] oracle/verdict and the repro emitter ----------------------

#[test]
fn meta_oracle_and_verdict_round_trip() {
    let spec = parse(
        "[meta]\ntitle = minimal repro\noracle = total_order\nverdict = violation\n\
         [scenario]\nkind = SC\n",
    );
    assert_eq!(spec.title.as_deref(), Some("minimal repro"));
    assert_eq!(spec.oracle.as_deref(), Some("total_order"));
    assert_eq!(spec.verdict, Some(Verdict::Violation));

    let spec = parse("[meta]\nverdict = pass\n[scenario]\nkind = SC\n");
    assert_eq!(spec.verdict, Some(Verdict::Pass));
    assert_eq!(spec.oracle, None);

    let err = parse_err("[meta]\nverdict = maybe\n[scenario]\nkind = SC\n");
    assert_eq!(err.line, 2);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "verdict"),
        "{err:?}"
    );
}

#[test]
fn emitted_spec_round_trips() {
    let mut s = Scenario::new(ProtocolKind::Scr)
        .f(2)
        .scheme(SchemeId::Sha1Dsa1024)
        .seed(77)
        .interval_ms(250)
        .time_checks(false)
        .request_timeout(SimDuration::from_ms(900))
        .shards(2)
        .router(RouterPolicy::EvenRanges)
        .world_workers(2)
        .window(Window {
            warmup_s: 1,
            run_s: 5,
            drain_s: 7,
        })
        .client(ClientLoad::poisson(55.5, 256).per_shard().population(3))
        .client(ClientLoad::constant(10.0, 100));
    s.faults = vec![
        ScenarioFault::crash(ProcessId(1), SimTime::from_secs(3)),
        ScenarioFault::mute_until(ProcessId(2), SimTime::from_ms(1000), SimTime::from_ms(2500)),
        ScenarioFault::delay_until(
            ProcessId(0),
            SimTime::ZERO,
            SimTime::from_ms(4000),
            SimDuration::from_ms(800),
        )
        .on_shard(1),
        ScenarioFault::duplicate_until(ProcessId(1), SimTime::from_ms(200), SimTime::from_ms(900)),
        ScenarioFault::reorder_until(
            ProcessId(2),
            SimTime::from_ms(100),
            SimTime::from_ms(600),
            SimDuration::from_ms(40),
        ),
        ScenarioFault::corrupt_order_at(ProcessId(0), SeqNo(4)),
        // An open-ended mute exercises the omitted `until_ms`.
        ScenarioFault {
            shard: 0,
            process: ProcessId(3),
            kind: ScenarioFaultKind::Mute {
                from: SimTime::from_ms(500),
                until: None,
            },
        },
    ];
    let text = emit_spec("minimal repro", "total_order", Verdict::Violation, &s)
        .expect("expressible scenario emits");
    let spec = parse(&text);
    assert_eq!(spec.base, s, "emitted spec re-parses to the same scenario");
    assert_eq!(spec.title.as_deref(), Some("minimal repro"));
    assert_eq!(spec.oracle.as_deref(), Some("total_order"));
    assert_eq!(spec.verdict, Some(Verdict::Violation));
    // A repro is a single-point spec: no axes, one cell.
    assert_eq!(spec.len(false), 1);
    // Emission is deterministic: same scenario, same bytes.
    assert_eq!(
        text,
        emit_spec("minimal repro", "total_order", Verdict::Violation, &s).unwrap()
    );
}

#[test]
fn inexpressible_scenarios_are_emit_errors() {
    let base = Scenario::new(ProtocolKind::Sc);

    let mut sub_ms = base.clone();
    sub_ms.knobs.batching_interval = SimDuration::from_us(500);
    assert_eq!(
        emit_spec("t", "o", Verdict::Pass, &sub_ms),
        Err(EmitError::SubMillisecond {
            what: "interval_ms"
        })
    );

    let mut cpu = base.clone();
    cpu.cpu = CpuModel::zero();
    assert_eq!(
        emit_spec("t", "o", Verdict::Pass, &cpu),
        Err(EmitError::NonDefaultCpu)
    );
}

#[test]
fn empty_and_malformed_lists_are_rejected() {
    let err = parse_err("[scenario]\nkind = SC\n[axis]\nfield = f\nvalues =\n");
    assert_eq!(err.line, 5);
    assert_eq!(
        err.kind,
        SpecErrorKind::EmptyValues {
            key: "values".into()
        }
    );

    let err = parse_err("[scenario]\nkind = SC\n[grid]\nseeds = 9..=3\n");
    assert_eq!(err.line, 4);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "seeds"),
        "{err:?}"
    );

    // A whole-key-space "range" is a typo, not 2^64 replicates to
    // materialize; and an overflowing seed expression is rejected at
    // parse, not wrapped at patch time.
    let err = parse_err("[scenario]\nkind = SC\n[grid]\nseeds = 0..=18446744073709551615\n");
    assert_eq!(err.line, 4);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "seeds"),
        "{err:?}"
    );
    let err = parse_err(
        "[scenario]\nkind = SC\n[axis]\nfield = interval_ms\nvalues = 40\n\
         seed = 18446744073709551615 + 1 + value\n",
    );
    assert_eq!(err.line, 6);
    assert!(
        matches!(err.kind, SpecErrorKind::BadValue { ref key, .. } if key == "seed"),
        "{err:?}"
    );
}

#[test]
fn smoke_overriding_unknown_axis_is_rejected() {
    let err = parse_err(&format!(
        "{BASE}[axis]\nfield = kind\nvalues = SC\n[smoke]\naxis.interval_ms = 40\n"
    ));
    assert_eq!(err.line, 12);
    assert_eq!(
        err.kind,
        SpecErrorKind::UnknownAxisRef {
            name: "interval_ms".into()
        }
    );
}

#[test]
fn duplicate_axis_names_are_rejected() {
    let err = parse_err(
        "[scenario]\nkind = SC\n[axis]\nfield = f\nvalues = 1, 2\n[axis]\nfield = f\nvalues = 3\n",
    );
    assert_eq!(err.line, 6);
    assert_eq!(err.kind, SpecErrorKind::DuplicateAxis { name: "f".into() });
}

#[test]
fn spec_error_is_a_std_error_with_display() {
    let err: Box<dyn std::error::Error> = Box::new(parse_err("[scenario]\nkind = SC\nf = no\n"));
    let msg = err.to_string();
    assert!(msg.contains("line 3"), "{msg}");
    assert!(msg.contains("`f`"), "{msg}");
}

// --- [trace] section ---------------------------------------------------

#[test]
fn trace_section_round_trips() {
    let spec = parse(
        "[scenario]\nkind = SC\n[trace]\nenable = on\nnodes = 0, 2\nphases = order, commit\nsample = 10\n",
    );
    let trace = spec.trace.expect("trace config parsed");
    assert!(trace.enabled);
    assert_eq!(trace.nodes, Some(vec![0, 2]));
    assert_eq!(
        trace.phases,
        Some(vec!["order".to_string(), "commit".to_string()])
    );
    assert_eq!(trace.sample, 10);

    // Defaults: an empty section is the permissive config, and a spec
    // without the section carries none at all.
    let spec = parse("[scenario]\nkind = SC\n[trace]\n");
    assert_eq!(spec.trace, Some(sofb_obs::TraceConfig::default()));
    assert_eq!(parse("[scenario]\nkind = SC\n").trace, None);

    let spec = parse("[scenario]\nkind = SC\n[trace]\nenable = off\n");
    assert!(!spec.trace.expect("parsed").enabled);
}

#[test]
fn trace_section_rejects_bad_values() {
    let err = parse_err("[scenario]\nkind = SC\n[trace]\nsample = 0\n");
    assert_eq!(err.line, 4);
    let err = parse_err("[scenario]\nkind = SC\n[trace]\nnodes = ,\n");
    assert_eq!(err.line, 4);
    let err = parse_err("[scenario]\nkind = SC\n[trace]\nphases =\n");
    assert_eq!(err.line, 4);
    let err = parse_err("[scenario]\nkind = SC\n[trace]\nbogus = 1\n");
    assert_eq!(err.line, 4);
    assert_eq!(
        err.kind,
        SpecErrorKind::UnknownKey {
            section: "trace".into(),
            key: "bogus".into(),
        }
    );
    // Singleton: a second [trace] section names both lines.
    let err = parse_err("[scenario]\nkind = SC\n[trace]\n[trace]\n");
    assert_eq!(err.line, 4);
    assert_eq!(
        err.kind,
        SpecErrorKind::DuplicateSection {
            section: "trace".into(),
            first_line: 3,
        }
    );
}
