//! # sofb-spec — data-driven scenarios
//!
//! A small, dependency-free text format (`.scn`) for describing
//! [`Scenario`](sofb_harness::scenario::Scenario)s and
//! [`SweepGrid`](sofb_harness::scenario::SweepGrid)s, so new experiment
//! grids ship as data files instead of Rust code. The format is
//! line-oriented: `[section]` headers, `key = value` assignments, `#`
//! comments. See `DESIGN.md` ("Spec language") for the full grammar; the
//! shape of a spec is:
//!
//! ```text
//! [meta]
//! title = saturation sweep
//!
//! [scenario]          # the base point every axis patches
//! kind = SC
//! f = 2
//! scheme = MD5+RSA-1024
//! interval_ms = 100
//! seed = 7
//! time_checks = off
//!
//! [window]
//! warmup_s = 2
//! run_s = 10
//! drain_s = 20
//!
//! [client]            # repeatable; `count` stamps copies
//! count = 3
//! rate = 100
//! size = 100
//!
//! [axis]              # repeatable; cartesian product in file order
//! field = kind
//! values = SC, SCR, BFT, CT
//!
//! [axis]
//! field = rate
//! values = 60, 120, 240
//!
//! [smoke]             # optional CI-sized reduction (--smoke)
//! window.run_s = 4
//! axis.rate = 120
//! ```
//!
//! [`Spec::parse`] rejects malformed files with typed, line-numbered
//! [`SpecError`]s; [`Spec::grid`] lowers onto the harness's `SweepGrid`,
//! building exactly the same labelled axis patches the in-code sweeps
//! build (the spec-equivalence tests pin bit-identical expansion). The
//! [`report`] module renders an executed grid as deterministic JSON and
//! re-checks it at 1e-9 — the same diff gate `BENCH_protocols.json`
//! uses.
//!
//! This crate sits below the protocol crates on purpose: it knows how to
//! *describe* and *lower* an experiment, not how to run one. Kind →
//! protocol dispatch stays in the umbrella crate (`sofbyz::scenario`),
//! whose `sofb` binary is the runner for these files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod error;
mod parse;
mod spec;

pub mod report;

pub use emit::{emit_spec, EmitError};
pub use error::{SpecError, SpecErrorKind};
pub use spec::{Spec, Verdict};

#[cfg(test)]
mod tests;
