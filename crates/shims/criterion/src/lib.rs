//! Offline stand-in for `criterion`: the macro/type surface the workspace
//! benches use, with a simple calibrated-iteration timer instead of the
//! full statistical machinery. `cargo bench` therefore still runs every
//! bench target and prints comparable mean-time lines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (best-effort without unsafe/intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (group supplies the function name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Drives one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to ≥ ~50 ms of
    /// work (capped so long end-to-end benches still finish promptly).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn report(label: &str, b: &Bencher) {
    if b.iters == 0 {
        return;
    }
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    println!(
        "bench {label:<40} {:>12.3} µs/iter ({} iters)",
        mean * 1e6,
        b.iters
    );
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Configures the sample count (accepted for API parity).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self._sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            prefix: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Configures the sample count (accepted for API parity).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.prefix, id), &b);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.prefix, id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a group of bench functions (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
