//! Offline stand-in for `parking_lot`: a `Mutex` with the non-poisoning
//! API shape, backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns a poison error
/// (a poisoned std lock is recovered transparently).
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_unwrap() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
