//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small API subset it actually uses: [`Rng`], [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for simulation workloads and fully
//! deterministic per seed (the simulator's reproducibility contract).
//!
//! This is NOT a cryptographic RNG; nothing in the workspace uses it for
//! key secrecy in production (test keys are deliberately deterministic).

#![forbid(unsafe_code)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Values that can be drawn uniformly from an RNG (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        self.start + (self.end - self.start) * u
    }
}

/// The user-facing convenience surface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }

    /// Fills the byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
