//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, reference-counted byte buffer: cloning is a
//! pointer bump, never a copy. The simulator's clients multicast each
//! request payload to every order process, so cheap clones here remove an
//! O(n · payload) allocation from the hottest send path.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static slice (API parity; any `&[u8]` works via `From`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes {
            data: v.as_slice().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes {
            data: iter.into_iter().collect(),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(std::sync::Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn conversions_and_views() {
        let b: Bytes = (&b"hello"[..]).into();
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..2], b"he");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
