//! A counting [`GlobalAlloc`] wrapper for zero-allocation assertions.
//!
//! Wraps the [`System`] allocator and counts every `alloc`/`realloc`
//! call with a relaxed atomic. Install it in a test binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc::new();
//! ```
//!
//! and bracket the region under test with [`allocations`] snapshots.
//! The counter is process-global, so a test binary that asserts exact
//! counts must run exactly one such test (Cargo runs tests in one
//! process, concurrently) — keep one `#[test]` per asserting binary.
//!
//! This is measurement infrastructure, not a memory-safety tool: frees
//! are not tracked and counts include allocator-internal reallocation.

// The allocator hooks below are the one place this workspace needs
// `unsafe`: a `GlobalAlloc` impl is an unsafe trait by definition. The
// impl only forwards to `System` after bumping a counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Total `alloc` + `realloc` calls since process start.
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A `System`-backed allocator that counts allocation calls.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Creates the allocator (const, so it can be a `static`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: defers entirely to `System`; the counter bump cannot
// allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}
