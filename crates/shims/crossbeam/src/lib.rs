//! Offline stand-in for the `crossbeam` crate: just the bounded-channel
//! subset the threaded runtime host uses, backed by `std::sync::mpsc`.

#![forbid(unsafe_code)]

/// Multi-producer channels (API subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Receive-with-timeout failure.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender has been dropped.
        Disconnected,
    }

    /// Send failure (channel full or disconnected).
    #[derive(Debug)]
    pub struct TrySendError<T>(pub T);

    /// Send failure (receiver dropped).
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; errors only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// Non-blocking send; errors if the buffer is full or the
        /// receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError(m),
            })
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Waits up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn roundtrip_and_timeout() {
        let (tx, rx) = bounded(4);
        tx.try_send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
