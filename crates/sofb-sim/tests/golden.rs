//! Golden event-trace determinism tests.
//!
//! These pin the exact `(time, node, kind)` observation sequence a fixed
//! seed produces on a representative world — messages, timers (arm,
//! re-arm, cancel), crashes, jittered links and per-node CPU cost all
//! exercised at once. The scheduler may be reworked internally (heap
//! layout, timer wheel, event batching) but the schedule it realizes is a
//! bit-for-bit property of the seed: any divergence fails here first.
//!
//! The constants were captured from the pre-timer-wheel engine
//! (`BinaryHeap` of Deliver/TimerFire/ProcessNext events) and are
//! deliberately kept unchanged across the scheduler overhaul: the new
//! engine must realize the identical schedule.

use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::{DelayModel, LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, Ctx, WireSize, World};
use sofb_sim::time::{SimDuration, SimTime};

#[derive(Clone, Debug)]
struct Msg {
    hop: u32,
    len: usize,
}

impl WireSize for Msg {
    fn wire_len(&self) -> usize {
        self.len
    }
}

/// Observation kinds, encoded as small integers for hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Got(u32),
    Tick(u64),
}

impl Kind {
    fn code(self) -> u64 {
        match self {
            Kind::Got(h) => 1 << 32 | u64::from(h),
            Kind::Tick(t) => 2 << 32 | t,
        }
    }
}

/// A node that echoes messages to a ring neighbour with random payload
/// sizes (exercising the world RNG from inside callbacks), arms a
/// periodic tick it keeps re-arming, and cancels/re-arms a second tag.
struct Worker {
    next: usize,
    limit: u32,
    period: SimDuration,
}

const TAG_TICK: u64 = 1;
const TAG_AUX: u64 = 2;

impl Actor for Worker {
    type Msg = Msg;
    type Event = Kind;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg, Kind>) {
        if ctx.me() == 0 {
            ctx.send(self.next, Msg { hop: 0, len: 64 });
        }
        ctx.set_timer(self.period, TAG_TICK);
        // Arm-then-cancel: must never fire.
        ctx.set_timer(SimDuration::from_ms(3), TAG_AUX);
        ctx.cancel_timer(TAG_AUX);
    }

    fn on_message(&mut self, _from: usize, msg: Msg, ctx: &mut Ctx<'_, Msg, Kind>) {
        ctx.emit(Kind::Got(msg.hop));
        if msg.hop < self.limit {
            use rand::Rng;
            let len = ctx.rng().gen_range(32usize..256);
            ctx.send(
                self.next,
                Msg {
                    hop: msg.hop + 1,
                    len,
                },
            );
        }
        // Re-arm supersedes the pending tick, shifting its phase.
        ctx.set_timer(self.period, TAG_TICK);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Msg, Kind>) {
        ctx.emit(Kind::Tick(tag));
        if tag == TAG_TICK {
            ctx.set_timer(self.period, TAG_TICK);
            // Periodically re-arm the aux tag at a jittered delay, then
            // sometimes cancel it right away (exercises cancel-of-armed).
            use rand::Rng;
            let ms = ctx.rng().gen_range(1u64..6);
            ctx.set_timer(SimDuration::from_ms(ms), TAG_AUX);
            if ms % 2 == 0 {
                ctx.cancel_timer(TAG_AUX);
            }
        }
    }
}

fn golden_world(seed: u64) -> World<Msg, Kind> {
    let net = NetworkModel::uniform(LinkModel {
        delay: DelayModel::Lan {
            base: SimDuration::from_us(120),
            jitter: SimDuration::from_us(60),
        },
        per_byte_ns: 80,
    })
    .with_bidi_link(
        0,
        1,
        LinkModel {
            delay: DelayModel::Uniform(SimDuration::from_us(30), SimDuration::from_us(90)),
            per_byte_ns: 8,
        },
    );
    let mut w: World<Msg, Kind> = World::new(net, seed);
    let cpu = CpuModel {
        per_event_ns: 200_000,
        per_byte_ns: 50,
        overload_threshold: 8,
        overload_penalty: 0.01,
    };
    for i in 0..4 {
        w.add_node(
            Box::new(Worker {
                next: (i + 1) % 4,
                limit: 40,
                period: SimDuration::from_ms(7 + i as u64),
            }),
            cpu,
        );
    }
    // Fault plan: node 3 crashes mid-run, node 2's uplink degrades.
    w.crash_at(3, SimTime::from_ms(45));
    w.delay_sends_from(2, SimTime::from_ms(20), SimDuration::from_us(500));
    w.mute_from(1, SimTime::from_ms(70));
    w
}

/// FNV-1a over the full `(time, node, kind)` sequence.
fn trace_hash(trace: &[(u64, usize, Kind)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(t, n, k) in trace {
        mix(t);
        mix(n as u64);
        mix(k.code());
    }
    h
}

fn run_golden(seed: u64) -> (Vec<(u64, usize, Kind)>, u64, u64) {
    let mut w = golden_world(seed);
    w.start();
    w.run_until(SimTime::from_ms(90));
    let trace: Vec<(u64, usize, Kind)> = w
        .drain_events()
        .into_iter()
        .map(|e| (e.time.as_ns(), e.node, e.event))
        .collect();
    let processed = w.processed();
    let msgs = w.messages_sent();
    (trace, processed, msgs)
}

#[test]
fn golden_trace_seed_1701_is_pinned() {
    let (trace, _processed, messages) = run_golden(1701);

    // Head of the sequence, spelled out for debuggability.
    let head: Vec<(u64, usize, Kind)> = trace.iter().take(4).copied().collect();
    assert_eq!(
        head,
        vec![
            (54_538, 1, Kind::Got(0)),
            (404_874, 2, Kind::Got(1)),
            (750_620, 3, Kind::Got(2)),
            (1_126_129, 0, Kind::Got(3)),
        ],
        "trace head diverged"
    );

    assert_eq!(trace.len(), 88, "trace length diverged");
    assert_eq!(messages, 41, "messages_sent diverged");
    assert_eq!(
        trace_hash(&trace),
        0xc30d_5530_61b5_c6f5,
        "full (time, node, kind) trace diverged"
    );
}

#[test]
fn golden_trace_is_seed_sensitive() {
    let (a, ..) = run_golden(1701);
    let (b, ..) = run_golden(1702);
    assert_ne!(trace_hash(&a), trace_hash(&b));
}

#[test]
fn golden_trace_is_rerun_stable() {
    let (a, pa, ma) = run_golden(1701);
    let (b, pb, mb) = run_golden(1701);
    assert_eq!(a, b);
    assert_eq!((pa, ma), (pb, mb));
}

/// Random arm/cancel/re-arm interleavings under load and crash must
/// uphold the one-shot timer contract the old per-node token `HashMap`
/// implemented: a firing is delivered only for the *latest* arming of a
/// tag, each arming fires at most once, and a cancelled arming never
/// fires. The actor is its own model: it tracks which tags it believes
/// are armed and asserts every delivery against that belief.
#[test]
fn random_timer_interleavings_uphold_one_shot_semantics() {
    use std::collections::HashSet;

    struct Chaos {
        armed: HashSet<u64>,
        fired: u64,
    }

    impl Chaos {
        fn random_ops(&mut self, ctx: &mut Ctx<'_, Msg, Kind>) {
            use rand::Rng;
            for _ in 0..ctx.rng().gen_range(1u32..4) {
                let tag = ctx.rng().gen_range(1u64..6);
                match ctx.rng().gen_range(0u32..4) {
                    // Arm or re-arm (supersedes any pending firing).
                    0..=1 => {
                        let us = ctx.rng().gen_range(50u64..20_000);
                        ctx.set_timer(SimDuration::from_us(us), tag);
                        self.armed.insert(tag);
                    }
                    2 => {
                        ctx.cancel_timer(tag);
                        self.armed.remove(&tag);
                    }
                    // Keep some cross-node traffic in flight so firings
                    // queue behind message service and go stale.
                    _ => {
                        let to = ctx.rng().gen_range(0usize..3);
                        ctx.send(to, Msg { hop: 0, len: 48 });
                    }
                }
            }
        }
    }

    impl Actor for Chaos {
        type Msg = Msg;
        type Event = Kind;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg, Kind>) {
            self.random_ops(ctx);
        }

        fn on_message(&mut self, _from: usize, _msg: Msg, ctx: &mut Ctx<'_, Msg, Kind>) {
            self.random_ops(ctx);
        }

        fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Msg, Kind>) {
            assert!(
                self.armed.remove(&tag),
                "tag {tag} fired without a live arming (cancelled, superseded or double fire)"
            );
            self.fired += 1;
            ctx.emit(Kind::Tick(tag));
            self.random_ops(ctx);
        }
    }

    fn run(seed: u64) -> Vec<(u64, usize, Kind)> {
        let net = NetworkModel::uniform(LinkModel {
            delay: DelayModel::Uniform(SimDuration::from_us(80), SimDuration::from_us(400)),
            per_byte_ns: 20,
        });
        let mut w: World<Msg, Kind> = World::new(net, seed);
        let cpu = CpuModel {
            per_event_ns: 400_000,
            per_byte_ns: 10,
            overload_threshold: 16,
            overload_penalty: 0.01,
        };
        for _ in 0..3 {
            w.add_node(
                Box::new(Chaos {
                    armed: HashSet::new(),
                    fired: 0,
                }),
                cpu,
            );
        }
        w.crash_at(2, SimTime::from_ms(120));
        w.start();
        w.run_until(SimTime::from_ms(250));
        w.drain_events()
            .into_iter()
            .map(|e| (e.time.as_ns(), e.node, e.event))
            .collect()
    }

    for seed in 0..8u64 {
        let a = run(seed);
        assert!(!a.is_empty(), "seed {seed}: no timer ever fired");
        // No observation from the crashed node after its crash time.
        assert!(
            a.iter()
                .all(|(t, node, _)| *node != 2 || *t <= 120_000_000 + 1_000_000),
            "seed {seed}: crashed node kept firing"
        );
        // Bit-for-bit determinism of the whole interleaving.
        assert_eq!(a, run(seed), "seed {seed}: schedule not reproducible");
    }
}
