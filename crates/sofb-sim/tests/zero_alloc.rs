//! Zero-allocation assertion for the event hot path.
//!
//! Drives a two-node ping-pong world — Copy messages, non-zero network
//! latency, per-node timers — long enough to warm every engine buffer
//! (event arena slab, network heap, timer wheel slab, instant queue,
//! scratch vectors), then asserts that a long steady-state stretch
//! performs **zero** heap allocations: every delivered event reuses
//! arena slots and pooled scratch.
//!
//! The tracing hooks (`World::set_trace_sink`) are compiled into this
//! build but no sink is installed, so the test also pins the zero-cost
//! disabled path: with the sink left `None`, every hook must reduce to
//! an `Option` check and the hot path must stay allocation-free.
//!
//! The counting allocator is process-global, so this file deliberately
//! holds exactly one `#[test]` — a second test running concurrently
//! would perturb the count.

use sofb_sim::cpu::CpuModel;
use sofb_sim::delay::{DelayModel, LinkModel, NetworkModel};
use sofb_sim::engine::{Actor, Ctx, WireSize, World};
use sofb_sim::time::SimDuration;

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc::new();

/// A fixed-size message: what protocol messages look like to the engine
/// once payload buffers are pooled (clones are refcount bumps, the
/// engine never clones at all — it moves payloads through the arena).
#[derive(Clone, Copy, Debug)]
struct Ping(u64);

impl WireSize for Ping {
    fn wire_len(&self) -> usize {
        64
    }
}

/// Echoes every ping forever and keeps a periodic timer armed — the
/// steady state exercises all three event stores (network heap, timer
/// wheel, instant queue) on every beat.
struct Echo {
    peer: usize,
    initiate: bool,
}

const TICK: u64 = 7;

impl Actor for Echo {
    type Msg = Ping;
    type Event = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, ()>) {
        if self.initiate {
            ctx.send(self.peer, Ping(0));
        }
        ctx.set_timer(SimDuration::from_us(350), TICK);
    }

    fn on_message(&mut self, _from: usize, msg: Ping, ctx: &mut Ctx<'_, Ping, ()>) {
        ctx.send(self.peer, Ping(msg.0 + 1));
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Ping, ()>) {
        ctx.set_timer(SimDuration::from_us(350), tag);
    }
}

fn world() -> World<Ping, ()> {
    let net = NetworkModel::uniform(LinkModel {
        delay: DelayModel::Constant(SimDuration::from_us(100)),
        per_byte_ns: 10,
    });
    let mut w: World<Ping, ()> = World::new(net, 0xa110c);
    w.add_node(
        Box::new(Echo {
            peer: 1,
            initiate: true,
        }),
        CpuModel::zero(),
    );
    w.add_node(
        Box::new(Echo {
            peer: 0,
            initiate: false,
        }),
        CpuModel::zero(),
    );
    w
}

#[test]
fn steady_state_event_path_allocates_nothing() {
    let mut w = world();
    w.start();

    // Warmup: grow every slab/heap/scratch buffer to steady-state
    // capacity.
    for _ in 0..10_000 {
        assert!(w.step(), "ping-pong world must never go idle");
    }

    // The counter is process-global, so the libtest harness thread can
    // sporadically contribute a couple of allocations mid-window. A real
    // hot-path leak allocates on every beat and taints *every* window, so
    // measure several windows and require at least one to be perfectly
    // clean.
    const STEADY_STEPS: u64 = 100_000;
    const WINDOWS: usize = 5;
    let mut min_allocs = u64::MAX;
    for _ in 0..WINDOWS {
        let before_allocs = alloc_counter::allocations();
        let before_events = w.processed();
        for _ in 0..STEADY_STEPS {
            assert!(w.step(), "ping-pong world must never go idle");
        }
        let delta_allocs = alloc_counter::allocations() - before_allocs;
        let delta_events = w.processed() - before_events;

        // A step that folds an instant batch can deliver several
        // callbacks, and some steps only advance time; require a healthy
        // callback rate rather than exact step parity.
        assert!(
            delta_events >= STEADY_STEPS / 2,
            "steps must process events (got {delta_events})"
        );
        min_allocs = min_allocs.min(delta_allocs);
        if min_allocs == 0 {
            break;
        }
    }
    assert_eq!(
        min_allocs, 0,
        "steady-state event path must not allocate (best window over \
         {WINDOWS} runs of {STEADY_STEPS} steps still saw {min_allocs} \
         allocations)"
    );
}
