//! # sofb-sim — deterministic discrete-event simulator
//!
//! This crate replaces the paper's 15-machine LAN testbed (see DESIGN.md's
//! substitution table). It provides:
//!
//! * [`time`] — virtual nanosecond clock ([`time::SimTime`]);
//! * [`delay`] — network delay models, including the paper's two link
//!   classes (fast intra-pair link vs. asynchronous network) and a
//!   partial-synchrony model with a Global Stabilization Time;
//! * [`cpu`] — per-node serialized CPU with service times and an overload
//!   penalty that reproduces post-saturation behaviour;
//! * [`engine`] — the event loop hosting sans-io [`engine::Actor`]s;
//! * [`metrics`] — histograms and experiment series.
//!
//! Execution is fully deterministic for a given seed, which the property
//! tests exploit to explore schedules reproducibly.
//!
//! # Examples
//!
//! ```
//! use sofb_sim::cpu::CpuModel;
//! use sofb_sim::delay::{LinkModel, NetworkModel};
//! use sofb_sim::engine::{Actor, Ctx, WireSize, World};
//!
//! #[derive(Clone, Debug)]
//! struct Hello;
//! impl WireSize for Hello {
//!     fn wire_len(&self) -> usize { 8 }
//! }
//!
//! struct Greeter { peer: usize }
//! impl Actor for Greeter {
//!     type Msg = Hello;
//!     type Event = &'static str;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Hello, &'static str>) {
//!         ctx.send(self.peer, Hello);
//!     }
//!     fn on_message(&mut self, _from: usize, _m: Hello, ctx: &mut Ctx<'_, Hello, &'static str>) {
//!         ctx.emit("got hello");
//!     }
//!     fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_, Hello, &'static str>) {}
//! }
//!
//! let mut world: World<Hello, &'static str> =
//!     World::new(NetworkModel::uniform(LinkModel::lan_100mbit()), 42);
//! world.add_node(Box::new(Greeter { peer: 1 }), CpuModel::default());
//! world.add_node(Box::new(Greeter { peer: 0 }), CpuModel::default());
//! world.start();
//! world.run_until_idle(1_000);
//! assert_eq!(world.events().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cpu;
pub mod delay;
pub mod engine;
pub mod metrics;
pub mod sched;
pub mod time;

pub use cpu::CpuModel;
pub use delay::{DelayModel, LinkModel, NetworkModel};
pub use engine::{Actor, Ctx, NodeStats, TimedEvent, WireSize, World};
pub use metrics::{EngineCounters, Histogram, HostCounters, Series, SeriesPoint};
pub use time::{SimDuration, SimTime};
