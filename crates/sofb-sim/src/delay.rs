//! Network delay models.
//!
//! The paper's system model distinguishes two kinds of links:
//!
//! * the **fast reliable network** between the two nodes of a pair
//!   (modelled as a low-latency constant/uniform link);
//! * the **reliable asynchronous network** connecting everything else
//!   (LAN-like in the paper's testbed, but with no known delay bound in
//!   the model — captured here by heavy-tailed or partially synchronous
//!   models for the adversarial experiments).
//!
//! Partial synchrony (Dwork/Lynch/Stockmeyer, the paper's assumption
//! 3(b)(i)) is modelled with a Global Stabilization Time: before GST the
//! "before" model applies (estimates can be violated), after GST the
//! "after" model applies.

use rand::Rng;

use crate::time::{SimDuration, SimTime};

/// A stochastic one-way message delay model.
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Fixed delay.
    Constant(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform(SimDuration, SimDuration),
    /// Exponential with the given mean, truncated at 100× the mean.
    Exponential(SimDuration),
    /// LAN-like: base plus uniform jitter.
    Lan {
        /// Propagation/switching floor.
        base: SimDuration,
        /// Maximum added jitter.
        jitter: SimDuration,
    },
    /// Partially synchronous: `before` applies until `gst`, `after` from
    /// then on (delays sampled at send time).
    PartialSync {
        /// Model in force before the global stabilization time.
        before: Box<DelayModel>,
        /// Model in force afterwards.
        after: Box<DelayModel>,
        /// The global stabilization time.
        gst: SimTime,
    },
}

impl DelayModel {
    /// A typical switched-LAN profile (≈120 µs ± 60 µs one-way).
    pub fn lan_default() -> Self {
        DelayModel::Lan {
            base: SimDuration::from_us(120),
            jitter: SimDuration::from_us(60),
        }
    }

    /// The fast intra-pair link profile (≈40 µs ± 20 µs one-way).
    pub fn pair_link_default() -> Self {
        DelayModel::Lan {
            base: SimDuration::from_us(40),
            jitter: SimDuration::from_us(20),
        }
    }

    /// Samples a delay for a message sent at `now`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, now: SimTime) -> SimDuration {
        match self {
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform(lo, hi) => {
                if hi.0 <= lo.0 {
                    *lo
                } else {
                    SimDuration(rng.gen_range(lo.0..=hi.0))
                }
            }
            DelayModel::Exponential(mean) => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let d = (-u.ln() * mean.0 as f64).min(mean.0 as f64 * 100.0);
                SimDuration(d as u64)
            }
            DelayModel::Lan { base, jitter } => {
                let j = if jitter.0 == 0 {
                    0
                } else {
                    rng.gen_range(0..=jitter.0)
                };
                SimDuration(base.0 + j)
            }
            DelayModel::PartialSync { before, after, gst } => {
                if now < *gst {
                    before.sample(rng, now)
                } else {
                    after.sample(rng, now)
                }
            }
        }
    }
}

/// A link: a delay model plus a serialization (bandwidth) cost per byte.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkModel {
    /// Propagation delay model.
    pub delay: DelayModel,
    /// Serialization cost per byte (100 Mbit/s ≈ 80 ns/B, 1 Gbit/s ≈ 8).
    pub per_byte_ns: u64,
}

impl LinkModel {
    /// 100 Mbit/s switched LAN (the paper's 2006-era testbed).
    pub fn lan_100mbit() -> Self {
        LinkModel {
            delay: DelayModel::lan_default(),
            per_byte_ns: 80,
        }
    }

    /// Fast dedicated intra-pair interconnect (gigabit-class).
    pub fn pair_link() -> Self {
        LinkModel {
            delay: DelayModel::pair_link_default(),
            per_byte_ns: 8,
        }
    }

    /// Total one-way latency for a `len`-byte message sent at `now`.
    pub fn latency<R: Rng + ?Sized>(&self, rng: &mut R, now: SimTime, len: usize) -> SimDuration {
        self.delay.sample(rng, now) + SimDuration(self.per_byte_ns * len as u64)
    }
}

/// Per-topology link selection: a default plus sparse overrides.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    default: LinkModel,
    overrides: Vec<((usize, usize), LinkModel)>,
}

impl NetworkModel {
    /// Uses `default` for every ordered `(from, to)` pair.
    pub fn uniform(default: LinkModel) -> Self {
        NetworkModel {
            default,
            overrides: Vec::new(),
        }
    }

    /// Overrides the link for the ordered pair `(from, to)`.
    pub fn with_link(mut self, from: usize, to: usize, link: LinkModel) -> Self {
        self.overrides.push(((from, to), link));
        self
    }

    /// Overrides both directions between `a` and `b`.
    pub fn with_bidi_link(self, a: usize, b: usize, link: LinkModel) -> Self {
        self.with_link(a, b, link.clone()).with_link(b, a, link)
    }

    /// Embeds another network's link overrides at a node-index offset:
    /// each of `other`'s `(from, to)` overrides is re-added as
    /// `(from + offset, to + offset)`. `other`'s default link is
    /// discarded — the receiving network's default keeps governing every
    /// non-overridden pair. This is how a sharded world composes one
    /// world-wide network from per-group network shapes (e.g. SC pair
    /// links recur inside every group, joined by the global LAN).
    pub fn merge_shifted(mut self, other: &NetworkModel, offset: usize) -> Self {
        for ((f, t), link) in &other.overrides {
            self.overrides
                .push(((f + offset, t + offset), link.clone()));
        }
        self
    }

    /// The link model for `(from, to)`.
    pub fn link(&self, from: usize, to: usize) -> &LinkModel {
        self.overrides
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, l)| l)
            .unwrap_or(&self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Constant(SimDuration::from_ms(3));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng, SimTime::ZERO), SimDuration::from_ms(3));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let lo = SimDuration::from_us(100);
        let hi = SimDuration::from_us(200);
        let m = DelayModel::Uniform(lo, hi);
        for _ in 0..100 {
            let d = m.sample(&mut rng, SimTime::ZERO);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = SimDuration::from_us(5);
        let m = DelayModel::Uniform(d, d);
        assert_eq!(m.sample(&mut rng, SimTime::ZERO), d);
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean = SimDuration::from_ms(1);
        let m = DelayModel::Exponential(mean);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut rng, SimTime::ZERO).0).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - mean.0 as f64).abs() / (mean.0 as f64) < 0.05);
    }

    #[test]
    fn partial_sync_switches_at_gst() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = DelayModel::PartialSync {
            before: Box::new(DelayModel::Constant(SimDuration::from_ms(50))),
            after: Box::new(DelayModel::Constant(SimDuration::from_us(100))),
            gst: SimTime::from_ms(10),
        };
        assert_eq!(
            m.sample(&mut rng, SimTime::from_ms(5)),
            SimDuration::from_ms(50)
        );
        assert_eq!(
            m.sample(&mut rng, SimTime::from_ms(10)),
            SimDuration::from_us(100)
        );
    }

    #[test]
    fn link_adds_serialization_cost() {
        let mut rng = StdRng::seed_from_u64(5);
        let link = LinkModel {
            delay: DelayModel::Constant(SimDuration::from_us(10)),
            per_byte_ns: 100,
        };
        let lat = link.latency(&mut rng, SimTime::ZERO, 1000);
        assert_eq!(lat.as_ns(), 10_000 + 100_000);
    }

    #[test]
    fn network_overrides() {
        let net = NetworkModel::uniform(LinkModel::lan_100mbit()).with_bidi_link(
            0,
            1,
            LinkModel::pair_link(),
        );
        assert_eq!(net.link(0, 1).per_byte_ns, 8);
        assert_eq!(net.link(1, 0).per_byte_ns, 8);
        assert_eq!(net.link(0, 2).per_byte_ns, 80);
    }

    #[test]
    fn merge_shifted_relocates_overrides_and_keeps_own_default() {
        let group = NetworkModel::uniform(LinkModel::pair_link()).with_bidi_link(
            0,
            1,
            LinkModel {
                delay: DelayModel::Constant(SimDuration::from_us(1)),
                per_byte_ns: 1,
            },
        );
        let world = NetworkModel::uniform(LinkModel::lan_100mbit())
            .merge_shifted(&group, 0)
            .merge_shifted(&group, 4);
        // Overrides recur at both bases…
        assert_eq!(world.link(0, 1).per_byte_ns, 1);
        assert_eq!(world.link(4, 5).per_byte_ns, 1);
        assert_eq!(world.link(5, 4).per_byte_ns, 1);
        // …while non-overridden pairs (including cross-group ones) use
        // the receiving network's default, not the group's.
        assert_eq!(world.link(1, 4).per_byte_ns, 80);
        assert_eq!(world.link(2, 3).per_byte_ns, 80);
    }
}
