//! Scheduler primitives: a generation-stamped slab feeding a hierarchical
//! timer wheel.
//!
//! The engine keeps two event stores: a binary heap for network events
//! (deliveries, scheduled crashes) and this wheel for *node-local*
//! time-indexed events — timer fires and "node ready" (dequeue) events.
//! Both stores order entries by the same `(time, seq)` key, and the
//! engine always pops the global minimum, so splitting the stores never
//! changes the realized schedule; it only changes the cost of
//! maintaining it:
//!
//! * **arm / cancel / re-arm are O(1)** — an arming allocates a slab slot
//!   and links it into the slot vector of one wheel level; a cancel
//!   bumps the slot's generation (invalidating any wheel reference
//!   lazily) and frees it. The old implementation paid a heap push per
//!   arming and a heap pop per *stale* firing; superseded armings now
//!   never surface at all.
//! * **timer fires don't contend with message events** — at a typical
//!   operating point the heap holds in-flight messages only, so its
//!   depth (and per-op `log n`) drops.
//!
//! # Wheel layout
//!
//! Four levels of 64 slots over a 2^17 ns (≈131 µs) base tick:
//!
//! | level | slot width | horizon |
//! |-------|-----------:|--------:|
//! | 0     | ≈131 µs    | ≈8.4 ms |
//! | 1     | ≈8.4 ms    | ≈537 ms |
//! | 2     | ≈537 ms    | ≈34 s   |
//! | 3     | ≈34 s      | ≈37 min |
//!
//! Entries beyond the last horizon go to an overflow list that is folded
//! back in as the wheel advances. Slot indexing is absolute
//! (`(due_tick >> 6·level) & 63`), so an entry never moves until the
//! cursor crosses its covering slot, at which point the slot *cascades*
//! into the levels below. The cursor only ever advances to the due time
//! of the next live entry, which the discrete-event engine asks for
//! explicitly — there is no tick thread.
//!
//! # Determinism
//!
//! Every entry carries the engine's global insertion sequence number;
//! entries are popped in strict `(due, seq)` order, exactly the order the
//! previous all-in-one-heap scheduler realized. Within one slot the pop
//! scans for the minimum key, which is cheap because slots are small and
//! cleared wholesale by cascades.

use crate::time::SimTime;

/// log2 of the base tick in nanoseconds (2^17 ns ≈ 131 µs).
const TICK_BITS: u32 = 17;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels.
const LEVELS: usize = 4;

/// A generation-stamped handle to a scheduled entry.
///
/// Cancelling through a stale handle (the entry already fired, or was
/// re-armed) is a harmless no-op: the slab slot's generation has moved
/// on and the handle no longer matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryId {
    slot: u32,
    gen: u32,
}

/// One slab slot: the payload of a live entry, or a free-list link.
#[derive(Debug)]
enum Slot<T> {
    Free,
    Live { due: SimTime, seq: u64, payload: T },
}

/// A reference to a slab entry stored in a wheel slot (or overflow).
/// The `(due, seq)` key is duplicated here so min-scans and cascades
/// never touch the slab for dead references.
#[derive(Clone, Copy, Debug)]
struct EntryRef {
    due: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

/// Hierarchical timer wheel over payloads `T`, keyed by `(due, seq)`.
#[derive(Debug)]
pub struct Wheel<T> {
    slab: Vec<(u32, Slot<T>)>, // (generation, slot)
    free: Vec<u32>,
    levels: Vec<Vec<Vec<EntryRef>>>, // [level][slot] -> refs
    occ: [u64; LEVELS],              // per-level slot occupancy bitmaps
    overflow: Vec<EntryRef>,
    /// Swap-in replacement for a slot vector being cascaded: keeps the
    /// drained slot's capacity in rotation instead of dropping it (the
    /// steady-state wheel would otherwise re-allocate a slot vector per
    /// cascade).
    spare_slot: Vec<EntryRef>,
    base_tick: u64,
    live: usize,
    /// Memoized location of the minimum entry (`key`, slab slot,
    /// level, wheel slot, index in the slot vector). Inserts behind the
    /// cached key, cancels of the cached entry and pops invalidate it;
    /// everything else leaves locations untouched (slot vectors only
    /// append outside of pops).
    cached_min: Option<CachedMin>,
    cascades: u64,
}

#[derive(Clone, Copy, Debug)]
struct CachedMin {
    due: SimTime,
    seq: u64,
    slab_slot: u32,
    level: usize,
    slot: usize,
    idx: usize,
}

impl<T> Default for Wheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Wheel<T> {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        Wheel {
            slab: Vec::new(),
            free: Vec::new(),
            // Slot vectors start with a little capacity: higher-level
            // slots are first touched only as the cursor advances into
            // them, and a zero-capacity first push would be a
            // steady-state allocation arbitrarily late in a run.
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::with_capacity(8)).collect())
                .collect(),
            occ: [0; LEVELS],
            overflow: Vec::new(),
            spare_slot: Vec::with_capacity(8),
            base_tick: 0,
            live: 0,
            cached_min: None,
            cascades: 0,
        }
    }

    /// Total higher-level slots cascaded down to level 0 so far — the
    /// wheel's refiling-traffic counter, scraped into the engine's
    /// metrics snapshot.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Number of live (scheduled, not cancelled) entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` at key `(due, seq)` and returns a handle for
    /// O(1) cancellation. `due` earlier than the wheel cursor is clamped
    /// to the cursor's slot (it pops next, in `seq` order).
    pub fn insert(&mut self, due: SimTime, seq: u64, payload: T) -> EntryId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slab.push((0, Slot::Free));
                (self.slab.len() - 1) as u32
            }
        };
        let gen = self.slab[slot as usize].0;
        self.slab[slot as usize].1 = Slot::Live { due, seq, payload };
        self.live += 1;
        if self.cached_min.is_some_and(|c| (due, seq) < (c.due, c.seq)) {
            self.cached_min = None;
        }
        self.place(EntryRef {
            due,
            seq,
            slot,
            gen,
        });
        EntryId { slot, gen }
    }

    /// Cancels the entry behind `id` if it is still scheduled. Returns
    /// whether a live entry was removed. O(1): the slab slot is freed and
    /// its generation bumped; the wheel-slot reference dies lazily.
    pub fn cancel(&mut self, id: EntryId) -> bool {
        match self.slab.get_mut(id.slot as usize) {
            Some((gen, slot @ Slot::Live { .. })) if *gen == id.gen => {
                *slot = Slot::Free;
                *gen = gen.wrapping_add(1);
                self.free.push(id.slot);
                self.live -= 1;
                if self.cached_min.is_some_and(|c| c.slab_slot == id.slot) {
                    self.cached_min = None;
                }
                true
            }
            _ => false,
        }
    }

    /// The `(due, seq)` key of the next entry to pop, if any. May cascade
    /// internally (hence `&mut`), which never changes pop order.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        let (l, s, i) = self.find_min()?;
        let r = self.levels[l][s][i];
        Some((r.due, r.seq))
    }

    /// Pops the minimum entry only if it comes due exactly at `t`
    /// (single scan for the drain loop that forms an instant).
    pub fn pop_due(&mut self, t: SimTime) -> Option<(u64, T)> {
        let (due, _) = self.peek()?;
        if due != t {
            return None;
        }
        self.pop().map(|(_, seq, payload)| (seq, payload))
    }

    /// Removes and returns the entry with the minimum `(due, seq)` key,
    /// advancing the wheel cursor to its due time.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let (l, s, i) = self.find_min()?;
        self.cached_min = None;
        let r = self.levels[l][s].swap_remove(i);
        if self.levels[l][s].is_empty() {
            self.occ[l] &= !(1u64 << s);
        }
        let (gen, slot) = &mut self.slab[r.slot as usize];
        debug_assert_eq!(*gen, r.gen, "find_min returned a dead ref");
        let Slot::Live { due, seq, payload } = std::mem::replace(slot, Slot::Free) else {
            unreachable!("find_min returned a free slot");
        };
        *gen = gen.wrapping_add(1);
        self.free.push(r.slot);
        self.live -= 1;
        self.base_tick = self.base_tick.max(due.as_ns() >> TICK_BITS);
        Some((due, seq, payload))
    }

    /// Files a reference into the level/slot its distance from the
    /// cursor selects (or overflow). A due time at or before the cursor
    /// files under the cursor's own level-0 slot (it pops next, in `seq`
    /// order).
    ///
    /// Level selection uses the highest 6-bit group in which the due
    /// tick differs from the cursor tick. This is what makes cascades
    /// terminate: entries in a level-`L` slot share all groups above `L`
    /// with the cursor, so once the cursor advances into their slot they
    /// re-file strictly lower.
    fn place(&mut self, r: EntryRef) {
        let due_tick = (r.due.as_ns() >> TICK_BITS).max(self.base_tick);
        let diff = due_tick ^ self.base_tick;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        };
        if level >= LEVELS {
            self.overflow.push(r);
            return;
        }
        let slot = ((due_tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level][slot].push(r);
        self.occ[level] |= 1u64 << slot;
    }

    /// Locates the live entry with the minimum `(due, seq)` key,
    /// cascading higher-level slots down (and folding overflow in) until
    /// that entry sits in level 0. Dead references encountered along the
    /// way are dropped.
    fn find_min(&mut self) -> Option<(usize, usize, usize)> {
        if let Some(c) = self.cached_min {
            return Some((c.level, c.slot, c.idx));
        }
        loop {
            // The first occupied slot per level, scanning circularly from
            // the cursor position, as an absolute start tick.
            let mut best: Option<(usize, usize, u64)> = None; // (level, slot, start_tick)
            for level in 0..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let pos = ((self.base_tick >> shift) & (SLOTS as u64 - 1)) as u32;
                let rotated = self.occ[level].rotate_right(pos);
                if rotated == 0 {
                    continue;
                }
                let dist = rotated.trailing_zeros() as u64;
                let slot = ((u64::from(pos) + dist) & (SLOTS as u64 - 1)) as usize;
                let aligned = (self.base_tick >> shift) << shift;
                let start = (aligned + (dist << shift)).max(self.base_tick);
                if best.is_none_or(|(_, _, s)| start < s) {
                    best = Some((level, slot, start));
                }
            }
            if !self.overflow.is_empty() {
                let omin = self
                    .overflow
                    .iter()
                    .map(|r| r.due.as_ns() >> TICK_BITS)
                    .min()
                    .unwrap();
                if best.is_none_or(|(_, _, s)| omin < s) {
                    // The overflow minimum precedes every level entry
                    // (level entries never lie before their slot start),
                    // so the cursor may jump straight to it — after which
                    // it and its neighbours become placeable.
                    self.base_tick = self.base_tick.max(omin);
                    let base = self.base_tick;
                    let (refile, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.overflow)
                        .into_iter()
                        .partition(|r| {
                            let tick = (r.due.as_ns() >> TICK_BITS).max(base);
                            (tick ^ base) >> (SLOT_BITS * LEVELS as u32) == 0
                        });
                    self.overflow = keep;
                    for r in refile {
                        if self.ref_alive(&r) {
                            self.place(r);
                        }
                    }
                    continue;
                }
            }
            let (level, slot, start_tick) = best?;
            // Drop dead references before deciding anything.
            let slab = &self.slab;
            self.levels[level][slot].retain(|r| {
                let (gen, s) = &slab[r.slot as usize];
                *gen == r.gen && matches!(s, Slot::Live { .. })
            });
            if self.levels[level][slot].is_empty() {
                self.occ[level] &= !(1u64 << slot);
                continue;
            }
            if level == 0 {
                let mut min_i = 0;
                for (i, r) in self.levels[0][slot].iter().enumerate().skip(1) {
                    let m = &self.levels[0][slot][min_i];
                    if (r.due, r.seq) < (m.due, m.seq) {
                        min_i = i;
                    }
                }
                let m = &self.levels[0][slot][min_i];
                self.cached_min = Some(CachedMin {
                    due: m.due,
                    seq: m.seq,
                    slab_slot: m.slot,
                    level: 0,
                    slot,
                    idx: min_i,
                });
                return Some((0, slot, min_i));
            }
            // Cascade: advance the cursor to the slot's window (nothing
            // live lies before it) and refile its entries lower down.
            self.cascades += 1;
            self.base_tick = self.base_tick.max(start_tick);
            let mut refs = std::mem::replace(
                &mut self.levels[level][slot],
                std::mem::take(&mut self.spare_slot),
            );
            self.occ[level] &= !(1u64 << slot);
            for r in refs.drain(..) {
                self.place(r);
            }
            // Keep the larger buffer in rotation (place() may have
            // started refilling the emptied slot).
            if refs.capacity() > self.spare_slot.capacity() {
                self.spare_slot = refs;
            }
        }
    }

    fn ref_alive(&self, r: &EntryRef) -> bool {
        let (gen, s) = &self.slab[r.slot as usize];
        *gen == r.gen && matches!(s, Slot::Live { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    fn t(ns: u64) -> SimTime {
        SimTime(ns)
    }

    #[test]
    fn pops_in_due_then_seq_order() {
        let mut w: Wheel<&str> = Wheel::new();
        w.insert(t(5_000_000), 2, "b");
        w.insert(t(1_000), 1, "a");
        w.insert(t(5_000_000), 3, "c");
        w.insert(t(90_000_000_000), 4, "far");
        assert_eq!(w.peek(), Some((t(1_000), 1)));
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c", "far"]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_orders_by_seq() {
        let mut w: Wheel<u32> = Wheel::new();
        // All three in one level-0 slot (well inside a 131 µs tick).
        w.insert(t(100), 30, 3);
        w.insert(t(90), 20, 2);
        w.insert(t(90), 10, 1);
        let order: Vec<u32> = std::iter::from_fn(|| w.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn cancel_is_o1_and_stale_cancel_is_noop() {
        let mut w: Wheel<u32> = Wheel::new();
        let a = w.insert(t(1_000), 1, 1);
        let b = w.insert(t(2_000), 2, 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel must be a no-op");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop().map(|(_, _, p)| p), Some(2));
        assert!(!w.cancel(b), "cancel after pop must be a no-op");
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut w: Wheel<u32> = Wheel::new();
        let a = w.insert(t(1_000), 1, 1);
        w.cancel(a);
        let b = w.insert(t(2_000), 2, 2); // reuses the slab slot
        assert!(!w.cancel(a), "stale handle must not hit the new entry");
        assert_eq!(w.len(), 1);
        assert!(w.cancel(b));
        assert!(w.is_empty());
    }

    #[test]
    fn cascades_across_levels() {
        let mut w: Wheel<&str> = Wheel::new();
        // One entry per level, plus overflow.
        w.insert(t(1 << 18), 1, "l0");
        w.insert(t(1 << 25), 2, "l1");
        w.insert(t(1 << 31), 3, "l2");
        w.insert(t(1 << 37), 4, "l3");
        w.insert(t(1 << 43), 5, "overflow");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["l0", "l1", "l2", "l3", "overflow"]);
    }

    /// Property sweep: random arm/cancel/re-arm interleavings across all
    /// level distances must pop in exactly the `(due, seq)` order a
    /// sorted reference produces — the semantics the engine's former
    /// all-in-one heap (plus per-node token `HashMap`) realized.
    #[test]
    fn random_ops_match_sorted_reference() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(0xA11CE + seed);
            let mut w: Wheel<u64> = Wheel::new();
            let mut model: BTreeMap<(u64, u64), u64> = BTreeMap::new();
            let mut handles: Vec<(EntryId, (u64, u64))> = Vec::new();
            let mut seq = 0u64;
            let mut now = 0u64;

            for _ in 0..400 {
                match rng.gen_range(0u32..10) {
                    // Arm at a random distance: same tick, level 0..3 or
                    // overflow are all reachable.
                    0..=5 => {
                        let delta = match rng.gen_range(0u32..5) {
                            0 => rng.gen_range(0u64..1 << 17),
                            1 => rng.gen_range(0u64..1 << 23),
                            2 => rng.gen_range(0u64..1 << 29),
                            3 => rng.gen_range(0u64..1 << 35),
                            _ => rng.gen_range(0u64..1 << 44),
                        };
                        seq += 1;
                        let due = now + delta;
                        let id = w.insert(t(due), seq, seq);
                        model.insert((due, seq), seq);
                        handles.push((id, (due, seq)));
                    }
                    // Cancel (possibly stale — the model mirrors).
                    6..=7 => {
                        if !handles.is_empty() {
                            let i = rng.gen_range(0..handles.len());
                            let (id, key) = handles.swap_remove(i);
                            let live = model.remove(&key).is_some();
                            assert_eq!(w.cancel(id), live);
                        }
                    }
                    // Pop a few (advances the cursor → forces cascades).
                    _ => {
                        for _ in 0..rng.gen_range(1usize..4) {
                            let got = w.pop().map(|(d, s, p)| ((d.as_ns(), s), p));
                            let want = model.pop_first();
                            assert_eq!(got, want, "seed {seed}: pop order diverged");
                            if let Some(((d, _), _)) = got {
                                now = now.max(d);
                            }
                        }
                    }
                }
                assert_eq!(w.len(), model.len(), "seed {seed}: live count diverged");
            }
            // Drain.
            while let Some(want) = model.pop_first() {
                let got = w.pop().map(|(d, s, p)| ((d.as_ns(), s), p)).unwrap();
                assert_eq!(got, want, "seed {seed}: drain order diverged");
            }
            assert!(w.pop().is_none());
        }
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut w: Wheel<u32> = Wheel::new();
        assert!(w.is_empty());
        assert_eq!(w.peek(), None);
        assert_eq!(w.pop().map(|(_, _, p)| p), None);
    }
}
