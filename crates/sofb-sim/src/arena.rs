//! Generation-indexed arena for in-flight event payloads.
//!
//! The engine's event stores — the network heap, the staged buffer, the
//! instant run queue and each node's inbox — used to own their message
//! payloads directly. Every heap sift and queue shuffle then moved whole
//! protocol messages around, and every store transition was a deep move
//! of the payload. The arena inverts that: payloads live in one slab of
//! generation-stamped slots, and the stores carry small `Copy`
//! [`EventKey`] handles instead. Moving an event between stores copies a
//! few words; the payload itself moves exactly twice — into the arena at
//! send time, out of it at dispatch time.
//!
//! The slot/generation discipline mirrors [`crate::sched`]'s slab: a
//! freed slot returns to a free list and bumps its generation, so a stale
//! key can never alias a recycled slot. Slots are recycled in LIFO order,
//! which keeps the hot end of the slab cache-resident at steady state.
//! After warmup the slab stops growing — inserting an in-flight payload
//! allocates nothing.
//!
//! Pure representation change: keys are handed out and redeemed in
//! exactly the order the owning stores already realize, so schedules are
//! bit-identical to the payload-owning engine (the golden-trace tests pin
//! this).

/// A generation-stamped handle to an in-flight event payload.
///
/// Keys are single-use: [`EventArena::take`] consumes the payload and
/// retires the key. The generation stamp makes accidental reuse loud
/// (a stale key panics in `take` and is a no-op in `free`) instead of
/// silently aliasing a recycled slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventKey {
    slot: u32,
    gen: u32,
}

/// Slab of in-flight event payloads, indexed by [`EventKey`].
#[derive(Debug)]
pub struct EventArena<M> {
    slots: Vec<(u32, Option<M>)>, // (generation, payload)
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    inserts: u64,
}

impl<M> Default for EventArena<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventArena<M> {
    /// An empty arena.
    pub fn new() -> Self {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            inserts: 0,
        }
    }

    /// Stores `payload` and returns its key. Reuses a freed slot when one
    /// exists; only a new high-water mark grows the slab.
    pub fn insert(&mut self, payload: M) -> EventKey {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push((0, None));
                (self.slots.len() - 1) as u32
            }
        };
        let (gen, cell) = &mut self.slots[slot as usize];
        debug_assert!(cell.is_none(), "free-listed slot still occupied");
        *cell = Some(payload);
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        self.inserts += 1;
        EventKey { slot, gen: *gen }
    }

    /// Removes and returns the payload behind `key`, retiring the key and
    /// recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics on a stale key (already taken or freed). The engine hands
    /// every key to exactly one store transition, so a stale take is a
    /// bookkeeping bug, not a recoverable condition.
    pub fn take(&mut self, key: EventKey) -> M {
        let (gen, cell) = &mut self.slots[key.slot as usize];
        assert_eq!(*gen, key.gen, "stale event key");
        let payload = cell.take().expect("stale event key");
        *gen = gen.wrapping_add(1);
        self.free.push(key.slot);
        self.live -= 1;
        payload
    }

    /// Drops the payload behind `key` without returning it (a delivery to
    /// a crashed node, a discarded inbox). Stale keys are a no-op.
    pub fn free(&mut self, key: EventKey) {
        let (gen, cell) = &mut self.slots[key.slot as usize];
        if *gen != key.gen || cell.is_none() {
            return;
        }
        *cell = None;
        *gen = gen.wrapping_add(1);
        self.free.push(key.slot);
        self.live -= 1;
    }

    /// Number of payloads currently in flight.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Largest number of payloads ever in flight at once — the slab's
    /// final size, and the engine's peak event-memory footprint.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total payloads ever inserted — the arena's alloc-side traffic
    /// counter, scraped into the engine's metrics snapshot.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut a: EventArena<String> = EventArena::new();
        let k1 = a.insert("one".into());
        let k2 = a.insert("two".into());
        assert_eq!(a.live(), 2);
        assert_eq!(a.take(k1), "one");
        assert_eq!(a.take(k2), "two");
        assert_eq!(a.live(), 0);
        assert_eq!(a.high_water(), 2);
    }

    #[test]
    fn slots_recycle_without_growth() {
        let mut a: EventArena<u64> = EventArena::new();
        for i in 0..1_000u64 {
            let k = a.insert(i);
            assert_eq!(a.take(k), i);
        }
        assert_eq!(a.high_water(), 1, "round-trips must reuse one slot");
    }

    #[test]
    #[should_panic(expected = "stale event key")]
    fn stale_take_panics() {
        let mut a: EventArena<u32> = EventArena::new();
        let k = a.insert(7);
        a.take(k);
        a.take(k);
    }

    #[test]
    fn stale_free_is_noop_and_generation_protects_reuse() {
        let mut a: EventArena<u32> = EventArena::new();
        let k1 = a.insert(7);
        a.free(k1);
        a.free(k1); // stale: no-op
        let k2 = a.insert(8); // reuses the slot under a new generation
        a.free(k1); // stale: must not free the new payload
        assert_eq!(a.live(), 1);
        assert_eq!(a.take(k2), 8);
    }
}
