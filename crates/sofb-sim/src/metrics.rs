//! Measurement helpers for the experiment harness.

/// A sample collection with summary statistics.
///
/// # Examples
///
/// ```
/// use sofb_sim::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.mean(), 2.5);
/// // Nearest-rank: the smallest sample covering at least 25% of the
/// // data — ⌈0.25·4⌉ = 1st of the sorted samples.
/// assert_eq!(h.percentile(25.0), 1.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `v` is not NaN: `total_cmp` sorts NaN after
    /// every number, so one poisoned sample would silently become the
    /// max — `percentile(100.0)` (and any rank near it) would return
    /// NaN without a trace. Catch it where it enters instead.
    pub fn record(&mut self, v: f64) {
        debug_assert!(!v.is_nan(), "Histogram::record: NaN sample");
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample (0 for an empty histogram).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample (0 for an empty histogram).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `p`-th percentile (0 for an empty histogram).
    ///
    /// True nearest-rank: the smallest sample such that at least `p`% of
    /// all samples are ≤ it — rank `⌈p/100 · n⌉` of the sorted samples
    /// (`p = 0` yields the minimum, `p = 100` the maximum). Earlier
    /// versions computed a rounded linear-interpolation index
    /// (`(p/100 · (n−1)).round()`), which disagrees with nearest-rank by
    /// up to one sample and is what the docs never promised.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.percentiles(&[p])[0]
    }

    /// Several percentiles at once, sorting the samples a single time
    /// (nearest-rank, like [`Histogram::percentile`]).
    ///
    /// The sort is total (`f64::total_cmp`), so NaN samples — which
    /// should not be recorded, but must not panic — order after every
    /// number instead of aborting the comparison.
    ///
    /// # Panics
    ///
    /// Panics if any requested percentile is outside `[0, 100]`.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<f64> {
        for p in ps {
            assert!((0.0..=100.0).contains(p), "percentile out of range");
        }
        if self.samples.is_empty() {
            return ps.iter().map(|_| 0.0).collect();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        ps.iter()
            .map(|p| {
                // Multiply before dividing: p·n is exact for the usual
                // integer-valued percentiles, so ⌈·⌉ cannot pick up a
                // ulp of error (0.2·5 ≠ 1.0 in binary, 20·5/100 is).
                let rank = (p * n as f64 / 100.0).ceil() as usize;
                sorted[rank.clamp(1, n) - 1]
            })
            .collect()
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// All samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Folds another histogram's samples into this one (cross-group
    /// rollups: per-shard latency distributions merge into one global
    /// distribution whose percentiles are exact, not averaged).
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Per-group sample collection with a cross-group rollup: one
/// [`Histogram`] per group (e.g. one ordering shard) plus an exact
/// merged view for global percentiles.
///
/// # Examples
///
/// ```
/// use sofb_sim::metrics::GroupRollup;
///
/// let mut r = GroupRollup::new(2);
/// r.record(0, 1.0);
/// r.record(1, 9.0);
/// assert_eq!(r.group(1).mean(), 9.0);
/// assert_eq!(r.merged().count(), 2);
/// assert_eq!(r.merged().percentile(100.0), 9.0);
/// ```
#[derive(Clone, Debug)]
pub struct GroupRollup {
    groups: Vec<Histogram>,
}

impl GroupRollup {
    /// An empty rollup over `groups` groups.
    pub fn new(groups: usize) -> Self {
        GroupRollup {
            groups: vec![Histogram::new(); groups],
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Records a sample for one group.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn record(&mut self, group: usize, v: f64) {
        self.groups[group].record(v);
    }

    /// Folds a whole histogram into one group (e.g. a shard's censored
    /// latency distribution computed elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn merge_into(&mut self, group: usize, h: &Histogram) {
        self.groups[group].merge(h);
    }

    /// One group's distribution.
    pub fn group(&self, group: usize) -> &Histogram {
        &self.groups[group]
    }

    /// The exact cross-group distribution (all samples of all groups),
    /// from which global p50/p99 are computed.
    pub fn merged(&self) -> Histogram {
        let mut all = Histogram::new();
        for g in &self.groups {
            all.merge(g);
        }
        all
    }
}

/// One (x, y) point of an experiment series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Swept parameter value (e.g. batching interval in ms).
    pub x: f64,
    /// Measured value (e.g. mean latency in ms).
    pub y: f64,
}

/// A named series of experiment points, printable as a table column.
#[derive(Clone, Debug)]
pub struct Series {
    /// Display name (e.g. "SC", "BFT", "CT").
    pub name: String,
    /// Measured points, in sweep order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(SeriesPoint { x, y });
    }

    /// The y value at a given x (exact match), if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }
}

/// Renders aligned columns for a set of series sharing x values.
///
/// The output mirrors the paper's figure data: one row per x, one column
/// per series.
pub fn render_table(x_label: &str, y_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# y = {y_label}\n"));
    out.push_str(&format!("{:>12}", x_label));
    for s in series {
        out.push_str(&format!(" {:>14}", s.name));
    }
    out.push('\n');
    let xs: Vec<f64> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for x in xs {
        out.push_str(&format!("{x:>12.1}"));
        for s in series {
            match s.y_at(x) {
                Some(y) => out.push_str(&format!(" {y:>14.3}")),
                None => out.push_str(&format!(" {:>14}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Deterministic engine-level counters of one finished run.
///
/// Every field is a function of the seed and the scenario alone —
/// identical across hosts and safe to compare bit-for-bit in
/// determinism tests. Host-dependent *rates* (events per wall-second,
/// …) are derived by pairing these with host measurements in
/// [`HostCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Actor callbacks dispatched over the run.
    pub events_processed: u64,
    /// Network-heap pushes (scheduler traffic; wheel and instant-queue
    /// events excluded).
    pub heap_pushes: u64,
    /// Event-arena occupancy high-water mark — the peak number of
    /// in-flight message payloads, i.e. the run's event-memory
    /// footprint in slots.
    pub arena_high_water: usize,
    /// Virtual time reached, ns.
    pub sim_ns: u64,
}

impl EngineCounters {
    /// Folds another engine's counters into this one — the merge step
    /// when several isolated worlds make up one logical run (parallel
    /// shard execution). Work totals sum; arena high-water marks sum
    /// too, because the worlds are live concurrently, so their peak
    /// event-memory footprints add; virtual time takes the maximum,
    /// since every world runs to the same horizon.
    pub fn absorb(&mut self, other: &EngineCounters) {
        self.events_processed += other.events_processed;
        self.heap_pushes += other.heap_pushes;
        self.arena_high_water += other.arena_high_water;
        self.sim_ns = self.sim_ns.max(other.sim_ns);
    }
}

/// Host-performance summary of one run or run set: deterministic
/// [`EngineCounters`] paired with wall-clock and allocator
/// measurements from the machine that executed it.
///
/// The derived rates — `events/sec`, `sim-seconds/wall-second`,
/// `allocs/event` — are machine-dependent by construction: report
/// them, never gate a determinism check on them.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostCounters {
    /// The deterministic counters of the measured run(s).
    pub engine: EngineCounters,
    /// Wall-clock time spent, ns.
    pub wall_ns: u64,
    /// Heap allocations performed while running (0 when no counting
    /// allocator is installed).
    pub allocations: u64,
}

impl HostCounters {
    /// Callbacks dispatched per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.engine.events_processed as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Simulated seconds advanced per wall-clock second (the simulator's
    /// real-time speedup).
    pub fn sim_per_wall(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.engine.sim_ns as f64 / self.wall_ns as f64
    }

    /// Heap allocations per dispatched callback (0 in a zero-alloc
    /// steady state, or when no counting allocator is installed).
    pub fn allocs_per_event(&self) -> f64 {
        if self.engine.events_processed == 0 {
            return 0.0;
        }
        self.allocations as f64 / self.engine.events_processed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0, 40.0, 50.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 30.0);
        assert_eq!(h.min(), 10.0);
        assert_eq!(h.max(), 50.0);
        assert_eq!(h.percentile(0.0), 10.0);
        assert_eq!(h.percentile(50.0), 30.0);
        assert_eq!(h.percentile(100.0), 50.0);
        assert!((h.std_dev() - 15.811).abs() < 0.01);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_validates() {
        Histogram::new().percentile(101.0);
    }

    /// Nearest-rank pinned on known sample sets: rank = ⌈p/100·n⌉,
    /// 1-indexed into the sorted samples (p0 → minimum).
    #[test]
    fn percentiles_are_true_nearest_rank() {
        // n = 4, inserted out of order.
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        assert_eq!(
            h.percentiles(&[0.0, 25.0, 50.0, 99.0, 100.0]),
            vec![1.0, 1.0, 2.0, 4.0, 4.0]
        );

        // n = 5: p50 must be the 3rd sample (⌈2.5⌉), p20 exactly the 1st
        // (⌈1.0⌉ — the rounded-linear-index formula returned the 2nd).
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0, 40.0, 50.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(20.0), 10.0);
        assert_eq!(h.percentile(50.0), 30.0);
        assert_eq!(h.percentile(60.0), 30.0);
        assert_eq!(h.percentile(60.1), 40.0);
        assert_eq!(h.percentile(99.0), 50.0);

        // n = 100: p99 is the 99th of 100 (the old formula's
        // round(0.99·99) = 98 → 99th as well, but p50 differed).
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.percentile(50.0), 50.0);
        assert_eq!(h.percentile(99.0), 99.0);
        assert_eq!(h.percentile(99.1), 100.0);
        assert_eq!(h.percentile(0.0), 1.0);
    }

    /// A stray NaN sample (possible in release builds, where `record`'s
    /// debug assert is compiled out) must not panic the sort; it
    /// totals-orders last.
    #[test]
    fn percentile_sort_is_nan_safe() {
        let mut h = Histogram::new();
        h.record(2.0);
        h.samples.push(f64::NAN); // bypass the debug assert in `record`
        h.record(1.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(50.0), 2.0);
        assert!(h.percentile(100.0).is_nan());
    }

    #[test]
    fn histogram_merge_concatenates_samples() {
        let mut a = Histogram::new();
        a.record(1.0);
        a.record(2.0);
        let mut b = Histogram::new();
        b.record(10.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 10.0);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 3);
    }

    /// Rollup percentiles are exact over the union of the groups, not an
    /// average of per-group percentiles.
    #[test]
    fn group_rollup_merged_is_exact() {
        let mut r = GroupRollup::new(3);
        for v in [1.0, 2.0, 3.0] {
            r.record(0, v);
        }
        for v in [100.0, 200.0, 300.0] {
            r.record(1, v);
        }
        // Group 2 stays empty: it must not perturb the rollup.
        assert_eq!(r.group_count(), 3);
        assert!(r.group(2).is_empty());
        assert_eq!(r.group(0).mean(), 2.0);
        let merged = r.merged();
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.percentile(50.0), 3.0);
        assert_eq!(merged.percentile(100.0), 300.0);

        let mut h = Histogram::new();
        h.record(1000.0);
        r.merge_into(2, &h);
        assert_eq!(r.merged().count(), 7);
    }

    #[test]
    fn series_and_table() {
        let mut a = Series::new("SC");
        a.push(40.0, 25.0);
        a.push(100.0, 24.0);
        let mut b = Series::new("BFT");
        b.push(40.0, 60.0);
        b.push(100.0, 46.0);
        assert_eq!(a.y_at(40.0), Some(25.0));
        assert_eq!(a.y_at(41.0), None);
        let table = render_table("interval_ms", "latency_ms", &[a, b]);
        assert!(table.contains("SC"));
        assert!(table.contains("BFT"));
        assert!(table.contains("40.0"));
        assert!(table.contains("60.000"));
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    #[cfg(debug_assertions)]
    fn record_rejects_nan() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
    }

    /// Infinities are not NaN: they sort correctly and surface loudly in
    /// any report, so `record` lets them through.
    #[test]
    fn record_accepts_infinity() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(f64::INFINITY);
        assert_eq!(h.percentile(100.0), f64::INFINITY);
        assert_eq!(h.percentile(50.0), 1.0);
    }
}
