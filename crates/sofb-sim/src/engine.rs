//! The discrete-event engine: actors, virtual network, per-node CPU queues.
//!
//! Every node hosts one [`Actor`] (a sans-io protocol state machine). The
//! engine delivers three kinds of stimuli — start, message, timer — and the
//! actor responds by queueing sends, arming timers and emitting
//! observations through the [`Ctx`] handle. Nodes process stimuli serially:
//! each callback's service time (dispatch + marshalling + accrued crypto
//! cost) advances the node's CPU clock, so queueing delay and saturation
//! emerge naturally.
//!
//! # Scheduler
//!
//! Events are totally ordered by `(time, seq)`, where `seq` is a global
//! insertion sequence number — execution is deterministic for a given
//! seed. Three stores realize that order (see DESIGN.md "Scheduler"):
//!
//! * a **binary heap** holding network events only (deliveries and
//!   scheduled crashes);
//! * a **hierarchical timer wheel** ([`crate::sched`]) holding node-local
//!   time-indexed events — timer fires and node-ready (dequeue) events —
//!   with O(1) arm/cancel/re-arm through a generation-stamped slab;
//! * an **instant run queue**: all events due at the current virtual
//!   instant, drained from both stores in one batch and processed in
//!   `seq` order; same-instant follow-ups (a node waking at `now`, a
//!   zero-latency delivery) join this queue directly and future
//!   deliveries accumulate in a pending buffer that is folded into the
//!   heap once per instant, not push-by-push.
//!
//! A node that drains its input queue goes idle instead of scheduling a
//! speculative dequeue event (*ProcessNext elision*): it records a
//! reserved `(ready_at, seq)` key and the next stimulus to arrive either
//! redeems that reservation (when it lands before the reserved key) or
//! wakes the node at its own instant. This halves scheduler traffic for
//! request/response workloads while realizing the exact event order the
//! former always-push scheduler produced — the golden-trace tests pin
//! that equivalence bit for bit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sofb_obs::{TraceKind, TraceRecord, TraceSink};

use crate::arena::{EventArena, EventKey};
use crate::cpu::CpuModel;
use crate::delay::NetworkModel;
use crate::sched::{EntryId, Wheel};
use crate::time::{SimDuration, SimTime};

/// Messages must report their wire size so the engine can charge
/// serialization and marshalling costs.
pub trait WireSize {
    /// Serialized length in bytes.
    fn wire_len(&self) -> usize;
}

/// A protocol state machine hosted on one simulated node.
pub trait Actor {
    /// The message type exchanged between nodes of this world.
    type Msg: Clone + WireSize + fmt::Debug;
    /// Observations surfaced to the experiment harness.
    type Event: fmt::Debug;

    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Event>);

    /// Called when a message from `from` is dequeued for processing.
    fn on_message(
        &mut self,
        from: usize,
        msg: Self::Msg,
        ctx: &mut Ctx<'_, Self::Msg, Self::Event>,
    );

    /// Called when an armed timer with `tag` fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg, Self::Event>);

    /// Drains virtual CPU nanoseconds accrued during the last callback
    /// (protocols forward their `CryptoProvider::take_cost_ns` here).
    fn take_cost_ns(&mut self) -> u64 {
        0
    }
}

/// An observation with its emission time and source node.
#[derive(Debug, Clone)]
pub struct TimedEvent<E> {
    /// Virtual time at which the observation was emitted.
    pub time: SimTime,
    /// Node that emitted it.
    pub node: usize,
    /// The observation itself.
    pub event: E,
}

/// Handle through which an actor interacts with the world during a
/// callback.
pub struct Ctx<'a, M, E> {
    now: SimTime,
    fired: Option<SimTime>,
    /// The hosting node's index as the actor sees it (relative to its
    /// index-namespace base; equals `world_node` in a flat world).
    me: usize,
    /// The hosting node's absolute world index (event attribution).
    world_node: usize,
    rng: &'a mut StdRng,
    sends: Vec<(usize, M)>,
    timer_ops: Vec<TimerOp>,
    events: &'a mut Vec<TimedEvent<E>>,
}

/// A timer mutation, applied in call order when the callback completes.
#[derive(Debug)]
enum TimerOp {
    Set(SimDuration, u64),
    Cancel(u64),
}

impl<M, E> Ctx<'_, M, E> {
    /// Current virtual time (start of this callback's service).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// For timer callbacks: the instant the timer *fired* (entered this
    /// node's queue). `now() - fired_at()` is the queueing delay the
    /// firing spent waiting behind other work — measurements that start
    /// "at the tick" (like the paper's batch-formation instant) should
    /// use this. `None` for message and start callbacks.
    pub fn fired_at(&self) -> Option<SimTime> {
        self.fired
    }

    /// The hosting node's index, relative to its index-namespace base
    /// (the identity the actor was built with; in a flat world this is
    /// the absolute world index).
    pub fn me(&self) -> usize {
        self.me
    }

    /// Queues a message to `to` (transmitted when the callback's service
    /// completes). Sending to self is allowed and near-instant.
    pub fn send(&mut self, to: usize, msg: M) {
        self.sends.push((to, msg));
    }

    /// Queues `msg` to every node in `targets` (cloning per target except
    /// the last, which takes the original — one fewer deep copy per
    /// multicast on the hot path).
    pub fn multicast<I: IntoIterator<Item = usize>>(&mut self, targets: I, msg: M)
    where
        M: Clone,
    {
        let mut it = targets.into_iter();
        let Some(mut pending) = it.next() else { return };
        for t in it {
            self.sends.push((pending, msg.clone()));
            pending = t;
        }
        self.sends.push((pending, msg));
    }

    /// Arms (or re-arms) the timer `tag` to fire `delay` after this
    /// callback completes. Re-arming supersedes any earlier arming.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timer_ops.push(TimerOp::Set(delay, tag));
    }

    /// Disarms timer `tag`.
    pub fn cancel_timer(&mut self, tag: u64) {
        self.timer_ops.push(TimerOp::Cancel(tag));
    }

    /// Emits an observation for the harness (attributed to the node's
    /// absolute world index).
    pub fn emit(&mut self, event: E) {
        self.events.push(TimedEvent {
            time: self.now,
            node: self.world_node,
            event,
        });
    }

    /// Deterministic randomness (seeded per world).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Outputs collected from a standalone callback invocation (used by hosts
/// other than the simulator, e.g. the threaded real-time runtime).
#[derive(Debug)]
pub struct CtxOutputs<M> {
    /// Messages to transmit, in call order.
    pub sends: Vec<(usize, M)>,
    /// Timer mutations, in call order.
    pub timers: Vec<TimerRequest>,
}

/// A timer mutation requested by an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerRequest {
    /// Arm (or re-arm) `tag` to fire after the delay.
    Set(SimDuration, u64),
    /// Disarm `tag`.
    Cancel(u64),
}

impl<'a, M, E> Ctx<'a, M, E> {
    /// Builds a context for driving an [`Actor`] outside the simulator.
    ///
    /// The caller supplies the current time, node identity, an RNG and an
    /// event sink, invokes the actor callback, then collects the requested
    /// sends/timer changes with [`Ctx::into_outputs`].
    pub fn standalone(
        now: SimTime,
        me: usize,
        rng: &'a mut StdRng,
        events: &'a mut Vec<TimedEvent<E>>,
    ) -> Self {
        Ctx {
            now,
            fired: None,
            me,
            world_node: me,
            rng,
            sends: Vec::new(),
            timer_ops: Vec::new(),
            events,
        }
    }

    /// Extracts the actions the actor requested during the callback.
    pub fn into_outputs(self) -> CtxOutputs<M> {
        CtxOutputs {
            sends: self.sends,
            timers: self
                .timer_ops
                .into_iter()
                .map(|op| match op {
                    TimerOp::Set(d, t) => TimerRequest::Set(d, t),
                    TimerOp::Cancel(t) => TimerRequest::Cancel(t),
                })
                .collect(),
        }
    }
}

/// A stimulus waiting in a node's input queue. Payloads stay in the
/// [`EventArena`] until dispatch; the queue entry carries the key plus
/// the wire length captured at send time (messages are immutable in
/// flight, so the length never changes).
#[derive(Debug, Clone, Copy)]
enum Incoming {
    Message {
        from: usize,
        key: EventKey,
        len: u32,
    },
    Timer {
        tag: u64,
        token: u64,
        fired: SimTime,
    },
}

/// Network-level heap events (everything else lives in the timer wheel
/// or the instant run queue). `Copy`: deliveries reference their payload
/// through an arena key, so heap sifts and store transitions move a few
/// words instead of whole protocol messages.
#[derive(Debug, Clone, Copy)]
enum NetEventKind {
    Deliver {
        to: usize,
        from: usize,
        key: EventKey,
        len: u32,
    },
    Crash {
        node: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct NetEvent {
    time: SimTime,
    seq: u64,
    kind: NetEventKind,
}

impl PartialEq for NetEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for NetEvent {}
impl PartialOrd for NetEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NetEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Node-local time-indexed events, held in the timer wheel.
#[derive(Debug, Clone, Copy)]
enum NodeEvent {
    /// An arming of timer `tag` comes due on `node`.
    TimerFire { node: usize, tag: u64, token: u64 },
    /// `node`'s CPU frees up and should dequeue its next stimulus.
    Ready { node: usize },
}

/// One entry of the current-instant run queue.
#[derive(Debug, Clone, Copy)]
enum InstantItem {
    Net(NetEventKind),
    Node(NodeEvent),
}

/// A live arming: `tag`'s current token plus the wheel entry carrying
/// the fire (`None` once the fire has left the wheel — scheduled into
/// the instant run queue at arm time, or already delivered to the
/// node's inbox).
#[derive(Debug)]
struct ArmedTimer {
    tag: u64,
    token: u64,
    entry: Option<EntryId>,
}

struct NodeState<M, E> {
    actor: Box<dyn Actor<Msg = M, Event = E>>,
    /// Index-namespace base: the actor addresses peers relative to this
    /// offset (`ctx.send(to)` transmits to world node `base + to`, and
    /// incoming `from` values are reported relative to it). A base of 0
    /// is the flat world; sharded worlds place each ordering group at its
    /// own base so unmodified protocol actors can cohabit one world.
    base: usize,
    inbox: VecDeque<Incoming>,
    /// True while a Ready event for this node is scheduled.
    busy: bool,
    busy_until: SimTime,
    /// Armed timers, tag → (token, wheel entry). Protocols use a handful
    /// of small tags, so a flat vector beats a hash map here.
    timers: Vec<ArmedTimer>,
    /// ProcessNext elision: the `(ready_at, seq)` key the node's dequeue
    /// would have carried had it stayed scheduled while idle. The next
    /// stimulus redeems it (preserving the realized schedule) or lets it
    /// lapse.
    reservation: Option<(SimTime, u64)>,
    next_token: u64,
    crashed: bool,
    /// Mute window `[from, until)`; `until = None` means forever.
    mute: Option<(SimTime, Option<SimTime>)>,
    /// Send-delay window `(from, until, extra)`; `until = None` forever.
    send_delay: Option<(SimTime, Option<SimTime>, SimDuration)>,
    /// Duplicate window `[from, until)`: every non-local send transmits
    /// twice, the copy with an independently sampled link latency.
    dup_sends: Option<(SimTime, Option<SimTime>)>,
    /// Reorder window `(from, until, jitter)`: every non-local send
    /// incurs an extra uniformly sampled delay in `[0, jitter]`.
    reorder_sends: Option<(SimTime, Option<SimTime>, SimDuration)>,
    cpu: CpuModel,
    /// Arena payloads currently addressed to this node (in the network
    /// stores or the inbox) — the live counter behind
    /// [`NodeStats::max_inflight`].
    inflight: usize,
    stats: NodeStats,
}

/// Per-node utilization counters (harness/introspection).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Callbacks processed.
    pub callbacks: u64,
    /// Total virtual service nanoseconds consumed (includes service
    /// scheduled beyond the observation instant; see
    /// [`NodeStats::utilization`]).
    pub busy_ns: u64,
    /// End of the last scheduled service.
    pub busy_until: SimTime,
    /// Largest input-queue depth observed (sampled at enqueue, so a
    /// burst of `k` stimuli to an idle node records `k`).
    pub max_queue: usize,
    /// Largest number of arena-resident payloads addressed to this node
    /// at once — in-flight deliveries plus queued inbox entries. Bounds
    /// the node's share of the event arena's high-water mark.
    pub max_inflight: usize,
}

impl NodeStats {
    /// Folds another node's counters into this one (used by sharded
    /// worlds to report per-group aggregates): counts and busy time add,
    /// high-water marks take the maximum.
    pub fn absorb(&mut self, other: &NodeStats) {
        self.callbacks += other.callbacks;
        self.busy_ns += other.busy_ns;
        self.busy_until = self.busy_until.max(other.busy_until);
        self.max_queue = self.max_queue.max(other.max_queue);
        self.max_inflight = self.max_inflight.max(other.max_inflight);
    }

    /// Fraction of `[0, now]` this node's CPU was busy.
    ///
    /// `busy_ns` accrues a callback's full service time when the
    /// callback is dispatched, which may extend beyond `now` when
    /// sampled mid-service; the unexpired tail (`busy_until - now`) is
    /// subtracted so the result never exceeds 1.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_ns() == 0 {
            return 0.0;
        }
        let unexpired = self.busy_until.since(now).as_ns();
        self.busy_ns.saturating_sub(unexpired) as f64 / now.as_ns() as f64
    }
}

/// The simulated world: nodes, network, event stores, observation log.
pub struct World<M: Clone + WireSize + fmt::Debug, E: fmt::Debug> {
    nodes: Vec<NodeState<M, E>>,
    /// In-flight message payloads; every `Deliver` and inbox entry holds
    /// a key into this slab.
    arena: EventArena<M>,
    /// Network events (deliveries, scheduled crashes) for future instants.
    heap: BinaryHeap<Reverse<NetEvent>>,
    /// Future network events staged during the current instant; folded
    /// into the heap in one batch when the next instant forms.
    staged: Vec<NetEvent>,
    /// Node-local time-indexed events (timer fires, node-ready).
    wheel: Wheel<NodeEvent>,
    /// All events due at `instant_time`, in `seq` order.
    instant: VecDeque<(u64, InstantItem)>,
    instant_time: SimTime,
    in_instant: bool,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    net: NetworkModel,
    events: Vec<TimedEvent<E>>,
    /// Recycled callback scratch: the send and timer-op vectors handed to
    /// each `Ctx` (callbacks never nest, so one set suffices). Their
    /// capacity persists across callbacks — the steady state allocates
    /// neither.
    spare_sends: Vec<(usize, M)>,
    spare_timer_ops: Vec<TimerOp>,
    processed: u64,
    messages_sent: u64,
    bytes_sent: u64,
    heap_pushes: u64,
    /// Optional trace sink. With `None` installed (the default) every
    /// hook site reduces to a branch on `Option::is_some`, keeping the
    /// hot path zero-alloc — `zero_alloc.rs` pins this.
    sink: Option<Box<dyn TraceSink>>,
}

impl<M: Clone + WireSize + fmt::Debug, E: fmt::Debug> World<M, E> {
    /// Creates a world over `net` with deterministic randomness from
    /// `seed`. Add nodes with [`World::add_node`], then call
    /// [`World::start`].
    pub fn new(net: NetworkModel, seed: u64) -> Self {
        World {
            nodes: Vec::new(),
            arena: EventArena::new(),
            heap: BinaryHeap::new(),
            staged: Vec::new(),
            wheel: Wheel::new(),
            instant: VecDeque::new(),
            instant_time: SimTime::ZERO,
            in_instant: false,
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            net,
            events: Vec::new(),
            spare_sends: Vec::new(),
            spare_timer_ops: Vec::new(),
            processed: 0,
            messages_sent: 0,
            bytes_sent: 0,
            heap_pushes: 0,
            sink: None,
        }
    }

    /// Adds a node hosting `actor` with the given CPU model; returns its
    /// index. The actor addresses peers by absolute world index (base 0).
    pub fn add_node(&mut self, actor: Box<dyn Actor<Msg = M, Event = E>>, cpu: CpuModel) -> usize {
        self.add_node_at_base(actor, cpu, 0)
    }

    /// Adds a node whose actor lives in the index namespace starting at
    /// `base`: every index the actor sends to is offset by `base` on the
    /// wire, and every `from` it observes is reported relative to `base`.
    /// This is what lets several independent ordering groups — each built
    /// from actors that believe their world is `0..n` — share one
    /// simulated world (see the harness's sharded builder). Messages
    /// must never arrive from below `base`.
    pub fn add_node_at_base(
        &mut self,
        actor: Box<dyn Actor<Msg = M, Event = E>>,
        cpu: CpuModel,
        base: usize,
    ) -> usize {
        self.nodes.push(NodeState {
            actor,
            base,
            inbox: VecDeque::new(),
            busy: false,
            busy_until: SimTime::ZERO,
            timers: Vec::new(),
            reservation: None,
            next_token: 0,
            crashed: false,
            mute: None,
            send_delay: None,
            dup_sends: None,
            reorder_sends: None,
            cpu,
            inflight: 0,
            stats: NodeStats::default(),
        });
        self.nodes.len() - 1
    }

    /// Utilization counters for `node`.
    pub fn node_stats(&self, node: usize) -> NodeStats {
        self.nodes[node].stats
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total callbacks processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Total messages handed to the network.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total bytes handed to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total events pushed into the network event heap (scheduler-traffic
    /// introspection; timer-wheel and instant-queue events are not heap
    /// traffic).
    pub fn heap_pushes(&self) -> u64 {
        self.heap_pushes
    }

    /// Heap pushes per processed callback — the scheduler-overhead ratio
    /// the ProcessNext elision and the timer wheel drive down (≈2.5 on
    /// the all-in-one-heap engine, <1.1 after).
    pub fn heap_pushes_per_callback(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        self.heap_pushes as f64 / self.processed as f64
    }

    /// Message payloads currently in flight (in the network stores or a
    /// node inbox, not yet dispatched).
    pub fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// High-water mark of in-flight message payloads — the event arena's
    /// final slab size, i.e. the peak event-memory footprint of the run.
    pub fn arena_high_water(&self) -> usize {
        self.arena.high_water()
    }

    /// Snapshot of the run's deterministic engine counters (see
    /// [`crate::metrics::EngineCounters`]): pair with wall-clock and
    /// allocator measurements for host-performance reporting.
    pub fn counters(&self) -> crate::metrics::EngineCounters {
        crate::metrics::EngineCounters {
            events_processed: self.processed,
            heap_pushes: self.heap_pushes,
            arena_high_water: self.arena.high_water(),
            sim_ns: self.now.as_ns(),
        }
    }

    /// Installs `sink` to receive engine trace records (dispatch spans,
    /// deliver instants, fault instants), replacing any previous sink.
    /// Spans carry the node index this engine knows; hosts embedding
    /// several engines (the parallel shard runner) restamp node indices
    /// when merging, exactly as they do for observed events.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// True if a trace sink is installed.
    pub fn trace_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Drains the installed sink's accepted records (empty if no sink).
    pub fn drain_trace(&mut self) -> Vec<TraceRecord> {
        match self.sink.as_mut() {
            Some(sink) => sink.drain(),
            None => Vec::new(),
        }
    }

    /// Deterministic snapshot of the engine's internal traffic counters
    /// as named metrics: the [`World::counters`] quartet plus the stores'
    /// own counters (arena insert traffic, timer-wheel cascades) that
    /// `EngineCounters` aggregates away. Snapshots from concurrent shard
    /// engines merge with [`sofb_obs::MetricsSnapshot::absorb`].
    pub fn metrics(&self) -> sofb_obs::MetricsSnapshot {
        let mut m = sofb_obs::MetricsSnapshot::new();
        m.set_counter("engine.events_processed", self.processed);
        m.set_counter("engine.heap_pushes", self.heap_pushes);
        m.set_counter("engine.messages_sent", self.messages_sent);
        m.set_counter("engine.bytes_sent", self.bytes_sent);
        m.set_counter("engine.arena_inserts", self.arena.inserts());
        m.set_counter("engine.arena_high_water", self.arena.high_water() as u64);
        m.set_counter("engine.timer_cascades", self.wheel.cascades());
        m.set_gauge("engine.sim_ns", self.now.as_ns() as f64);
        m
    }

    /// Marks a node crashed: its queue is discarded, its armed timers are
    /// cancelled and it receives no further callbacks. (Byzantine
    /// behaviours live in the actors; crash is the only failure the
    /// engine itself models.)
    pub fn crash(&mut self, node: usize) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceRecord {
                time_ns: self.now.as_ns(),
                dur_ns: 0,
                seq: self.processed,
                node,
                kind: TraceKind::Fault,
                name: "crash".to_string(),
                parent: None,
            });
        }
        let n = &mut self.nodes[node];
        n.crashed = true;
        for inc in n.inbox.drain(..) {
            if let Incoming::Message { key, .. } = inc {
                self.arena.free(key);
                n.inflight -= 1;
            }
        }
        for t in n.timers.drain(..) {
            if let Some(id) = t.entry {
                self.wheel.cancel(id);
            }
        }
    }

    /// True if `node` has been crashed.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.nodes[node].crashed
    }

    /// Schedules `node` to crash at virtual time `at`. A time already in
    /// the past is clamped to the current instant, i.e. the node crashes
    /// as soon as the event is processed.
    pub fn crash_at(&mut self, node: usize, at: SimTime) {
        let at = at.max(self.now);
        self.push_net(at, NetEventKind::Crash { node });
    }

    /// Mutes `node` from `from` onward: it keeps processing input but all
    /// its sends are silently dropped (a silent-but-alive process, the
    /// time-domain fault every protocol variant must tolerate).
    ///
    /// Installing a second mute keeps the earlier of the two start
    /// times (the node can only be "mute from the first moment either
    /// plan applies").
    pub fn mute_from(&mut self, node: usize, from: SimTime) {
        self.mute_between(node, from, None);
    }

    /// Mutes `node` for the window `[from, until)`; `until = None` means
    /// forever. Bounded mutes express partial-synchrony scenarios: a
    /// process silent before the Global Stabilization Time whose sends
    /// pass again afterwards.
    ///
    /// Installing a second mute merges windows conservatively: the
    /// earlier of the two start times and the later of the two end
    /// times (an unbounded window absorbs any bounded one).
    pub fn mute_between(&mut self, node: usize, from: SimTime, until: Option<SimTime>) {
        let slot = &mut self.nodes[node].mute;
        *slot = Some(match *slot {
            None => (from, until),
            Some((f0, u0)) => {
                let merged_until = match (u0, until) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
                (f0.min(from), merged_until)
            }
        });
    }

    /// Adds `extra` latency to every message `node` sends from `from`
    /// onward (a degraded process / congested uplink).
    ///
    /// One delay plan per node: installing a second replaces the first
    /// (escalating degradation schedules are not supported).
    pub fn delay_sends_from(&mut self, node: usize, from: SimTime, extra: SimDuration) {
        self.delay_sends_between(node, from, None, extra);
    }

    /// Adds `extra` send latency during the window `[from, until)`;
    /// `until = None` means forever. The bounded form models pre-GST
    /// asynchrony that lifts at the Global Stabilization Time. Replaces
    /// any earlier delay plan on the node.
    pub fn delay_sends_between(
        &mut self,
        node: usize,
        from: SimTime,
        until: Option<SimTime>,
        extra: SimDuration,
    ) {
        self.nodes[node].send_delay = Some((from, until, extra));
    }

    /// Duplicates every message `node` sends during the window
    /// `[from, until)`; `until = None` means forever. The duplicate is a
    /// faithful retransmission: the same payload, delivered under an
    /// independently sampled link latency (plus any active send delay),
    /// so it may arrive before or after the original. Models a flaky NIC
    /// or an at-least-once transport retrying spuriously — the classic
    /// adversarial schedule that exposes protocols relying on
    /// exactly-once delivery. Replaces any earlier duplicate plan.
    ///
    /// Outside the window this is a strict no-op: no extra randomness is
    /// drawn and no event is scheduled, so realized schedules stay
    /// bit-identical to a world without the plan.
    pub fn duplicate_sends_between(&mut self, node: usize, from: SimTime, until: Option<SimTime>) {
        self.nodes[node].dup_sends = Some((from, until));
    }

    /// Adds a uniformly sampled delay in `[0, jitter]` to every message
    /// `node` sends during the window `[from, until)`; `until = None`
    /// means forever. Messages whose base latencies differ by less than
    /// the jitter bound can now overtake each other — deterministic,
    /// seeded reordering within delay bounds. Replaces any earlier
    /// reorder plan on the node.
    ///
    /// Outside the window this is a strict no-op (no randomness drawn),
    /// preserving bit-identical schedules when the plan is absent.
    pub fn reorder_sends_between(
        &mut self,
        node: usize,
        from: SimTime,
        until: Option<SimTime>,
        jitter: SimDuration,
    ) {
        self.nodes[node].reorder_sends = Some((from, until, jitter));
    }

    /// Invokes `on_start` on every node (in index order, at time zero).
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            self.run_callback(i, None);
        }
    }

    /// Mutable access to a node's actor (for harness inspection between
    /// steps; prefer observations where possible).
    pub fn actor_mut(&mut self, node: usize) -> &mut dyn Actor<Msg = M, Event = E> {
        &mut *self.nodes[node].actor
    }

    /// Drains all observations emitted so far.
    pub fn drain_events(&mut self) -> Vec<TimedEvent<E>> {
        std::mem::take(&mut self.events)
    }

    /// Observations emitted so far (without draining).
    pub fn events(&self) -> &[TimedEvent<E>] {
        &self.events
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Inserts an item into the current instant's run queue at its `seq`
    /// position (almost always the back; a redeemed reservation may sort
    /// earlier).
    fn instant_insert(&mut self, seq: u64, item: InstantItem) {
        let pos = self.instant.partition_point(|(s, _)| *s < seq);
        self.instant.insert(pos, (seq, item));
    }

    /// Schedules a network event: same-instant events join the run
    /// queue, future ones are staged for the next heap fold.
    fn push_net(&mut self, time: SimTime, kind: NetEventKind) {
        let seq = self.alloc_seq();
        if self.in_instant && time == self.instant_time {
            self.instant_insert(seq, InstantItem::Net(kind));
        } else {
            self.staged.push(NetEvent { time, seq, kind });
        }
    }

    /// Schedules a node-local event under an externally allocated `seq`:
    /// same-instant events join the run queue (no wheel entry), future
    /// ones enter the wheel.
    fn push_node(&mut self, due: SimTime, seq: u64, ev: NodeEvent) -> Option<EntryId> {
        if self.in_instant && due == self.instant_time {
            self.instant_insert(seq, InstantItem::Node(ev));
            None
        } else {
            Some(self.wheel.insert(due, seq, ev))
        }
    }

    /// Time of the next event to process: the current instant's time
    /// while its run queue still holds events, otherwise the earliest
    /// time across the heap, the wheel and the staged buffer.
    fn next_event_time(&mut self) -> Option<SimTime> {
        if !self.instant.is_empty() {
            return Some(self.instant_time);
        }
        let heap_t = self.heap.peek().map(|Reverse(e)| e.time);
        let wheel_t = self.wheel.peek().map(|(t, _)| t);
        let staged_t = self.staged.iter().map(|e| e.time).min();
        [heap_t, wheel_t, staged_t].into_iter().flatten().min()
    }

    /// Forms the next instant: picks the earliest `(time, seq)` across
    /// the heap, the wheel and the staged buffer, drains *everything* due
    /// at that time into the run queue, and folds the remaining staged
    /// events into the heap in one batch. Returns `false` when no events
    /// remain. Must only be called with an empty instant run queue.
    fn form_instant(&mut self) -> bool {
        let Some(t) = self.next_event_time() else {
            return false;
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.instant_time = t;
        self.in_instant = true;

        // The run queue is empty here (the caller just drained it), so it
        // doubles as the batch buffer — its capacity, like the staged
        // buffer's, persists across instants.
        debug_assert!(self.instant.is_empty());
        for i in 0..self.staged.len() {
            let e = self.staged[i];
            if e.time == t {
                self.instant.push_back((e.seq, InstantItem::Net(e.kind)));
            } else {
                self.heap_pushes += 1;
                self.heap.push(Reverse(e));
            }
        }
        self.staged.clear();
        while self.heap.peek().is_some_and(|Reverse(e)| e.time == t) {
            let Reverse(e) = self.heap.pop().unwrap();
            self.instant.push_back((e.seq, InstantItem::Net(e.kind)));
        }
        while let Some((seq, ev)) = self.wheel.pop_due(t) {
            self.instant.push_back((seq, InstantItem::Node(ev)));
        }
        self.instant
            .make_contiguous()
            .sort_unstable_by_key(|(seq, _)| *seq);
        true
    }

    /// Processes a single engine event. Returns `false` when no events
    /// remain.
    pub fn step(&mut self) -> bool {
        if self.instant.is_empty() && !self.form_instant() {
            return false;
        }
        let (seq, item) = self.instant.pop_front().expect("instant just formed");
        match item {
            InstantItem::Net(NetEventKind::Deliver { to, from, key, len }) => {
                self.deliver(to, from, key, len, seq);
            }
            InstantItem::Net(NetEventKind::Crash { node }) => {
                self.crash(node);
            }
            InstantItem::Node(NodeEvent::TimerFire { node, tag, token }) => {
                self.timer_fire(node, tag, token, seq);
            }
            InstantItem::Node(NodeEvent::Ready { node }) => {
                self.ready(node);
            }
        }
        true
    }

    /// A message arrives at `to`: queue it and wake the node if idle.
    /// The payload stays in the arena until the callback dispatches it;
    /// a crashed destination frees the slot instead.
    fn deliver(&mut self, to: usize, from: usize, key: EventKey, len: u32, seq: u64) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(TraceRecord {
                time_ns: self.now.as_ns(),
                dur_ns: 0,
                seq,
                node: to,
                kind: TraceKind::Deliver,
                name: "deliver".to_string(),
                parent: None,
            });
        }
        let node = &mut self.nodes[to];
        if node.crashed {
            node.inflight -= 1;
            self.arena.free(key);
            return;
        }
        node.inbox.push_back(Incoming::Message { from, key, len });
        node.stats.max_queue = node.stats.max_queue.max(node.inbox.len());
        if !node.busy {
            self.wake(to, seq);
        }
    }

    /// An arming comes due: queue the firing and wake the node if idle.
    /// The arming stays recorded until the firing is dequeued (one-shot
    /// semantics: a live firing consumes its arming).
    fn timer_fire(&mut self, idx: usize, tag: u64, token: u64, seq: u64) {
        let node = &mut self.nodes[idx];
        if node.crashed {
            return;
        }
        // Only the latest arming of a tag is live. Wheel-resident fires
        // are physically removed on cancel/re-arm so they always pass;
        // same-instant fires are invalidated here.
        let Some(armed) = node
            .timers
            .iter_mut()
            .find(|t| t.tag == tag && t.token == token)
        else {
            return;
        };
        // The fire has left whichever store carried it; a later
        // cancel/re-arm of this arming has no wheel entry to remove.
        armed.entry = None;
        let fired = self.now;
        node.inbox.push_back(Incoming::Timer { tag, token, fired });
        node.stats.max_queue = node.stats.max_queue.max(node.inbox.len());
        if !node.busy {
            self.wake(idx, seq);
        }
    }

    /// Schedules the dequeue for an idle node that just received a
    /// stimulus. If the node still holds a live reservation (its
    /// would-be dequeue key from going idle), the stimulus redeems it so
    /// the dequeue runs at exactly the `(time, seq)` position the
    /// always-push scheduler realized; otherwise the dequeue joins the
    /// current instant under a fresh seq.
    fn wake(&mut self, idx: usize, trigger_seq: u64) {
        self.nodes[idx].busy = true;
        match self.nodes[idx].reservation.take() {
            Some((ready_at, seq)) if (self.now, trigger_seq) < (ready_at, seq) => {
                self.push_node(ready_at, seq, NodeEvent::Ready { node: idx });
            }
            _ => {
                let seq = self.alloc_seq();
                self.push_node(self.now, seq, NodeEvent::Ready { node: idx });
            }
        }
    }

    /// The node's CPU is free: dequeue and run the next stimulus.
    fn ready(&mut self, idx: usize) {
        if self.nodes[idx].crashed {
            return;
        }
        let Some(incoming) = self.nodes[idx].inbox.pop_front() else {
            self.nodes[idx].busy = false;
            return;
        };
        // A timer may have been re-armed or cancelled while this firing
        // was queued behind other work; skip stale firings and keep
        // draining at the same instant.
        if let Incoming::Timer { tag, token, .. } = &incoming {
            let node = &mut self.nodes[idx];
            match node
                .timers
                .iter()
                .position(|t| t.tag == *tag && t.token == *token)
            {
                None => {
                    let seq = self.alloc_seq();
                    self.push_node(self.now, seq, NodeEvent::Ready { node: idx });
                    return;
                }
                Some(i) => {
                    node.timers.swap_remove(i);
                }
            }
        }
        self.run_callback(idx, Some(incoming));
    }

    /// Runs until virtual time would exceed `deadline` or no events
    /// remain.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.next_event_time().is_some_and(|t| t <= deadline) {
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until no events remain (with a safety cap on event count).
    ///
    /// # Panics
    ///
    /// Panics if more than `max_steps` engine events are processed, which
    /// almost always indicates a livelock in the hosted protocol.
    pub fn run_until_idle(&mut self, max_steps: u64) {
        let mut steps = 0u64;
        while self.step() {
            steps += 1;
            assert!(steps <= max_steps, "simulation exceeded {max_steps} steps");
        }
    }

    /// Delivers `msg` from a fictitious external source (e.g. a client
    /// co-located with `to`) at the current time.
    pub fn inject(&mut self, to: usize, from: usize, msg: M) {
        let len = msg.wire_len() as u32;
        let key = self.arena.insert(msg);
        let n = &mut self.nodes[to];
        n.inflight += 1;
        n.stats.max_inflight = n.stats.max_inflight.max(n.inflight);
        self.push_net(self.now, NetEventKind::Deliver { to, from, key, len });
    }

    fn run_callback(&mut self, idx: usize, incoming: Option<Incoming>) {
        let start = self.now.max(self.nodes[idx].busy_until);
        let msg_len = match incoming {
            Some(Incoming::Message { len, .. }) => len as usize,
            _ => 0,
        };
        let queue_len = self.nodes[idx].inbox.len();

        let is_start = incoming.is_none();
        let fired = match incoming {
            Some(Incoming::Timer { fired, .. }) => Some(fired),
            _ => None,
        };
        // Dispatch moves the payload out of the arena, freeing its slot
        // for the sends this very callback queues.
        let mut taken: Option<M> = match incoming {
            Some(Incoming::Message { key, .. }) => {
                self.nodes[idx].inflight -= 1;
                Some(self.arena.take(key))
            }
            _ => None,
        };
        // Dispatch-span label: the message's variant name, captured before
        // the actor consumes the payload. Allocates only when tracing.
        let dispatch_label: Option<String> = if self.sink.is_some() {
            Some(match (&incoming, &taken) {
                (None, _) => "start".to_string(),
                (Some(Incoming::Timer { .. }), _) => "timer".to_string(),
                (_, Some(m)) => sofb_obs::debug_label(m),
                _ => "message".to_string(),
            })
        } else {
            None
        };
        let base = self.nodes[idx].base;
        let mut events_buf = std::mem::take(&mut self.events);
        let (mut sends, mut timer_ops, cost_ns) = {
            let node = &mut self.nodes[idx];
            let mut ctx = Ctx {
                now: start,
                fired,
                me: idx - base,
                world_node: idx,
                rng: &mut self.rng,
                sends: std::mem::take(&mut self.spare_sends),
                timer_ops: std::mem::take(&mut self.spare_timer_ops),
                events: &mut events_buf,
            };
            match incoming {
                None => node.actor.on_start(&mut ctx),
                Some(Incoming::Message { from, .. }) => {
                    // `from` is a world index; the actor sees it relative
                    // to its base (clients and cross-group senders land
                    // beyond the group's own range, exactly as external
                    // senders do in a flat world).
                    let msg = taken.take().expect("message payload taken above");
                    node.actor.on_message(from - base, msg, &mut ctx)
                }
                Some(Incoming::Timer { tag, .. }) => node.actor.on_timer(tag, &mut ctx),
            }
            let cost = node.actor.take_cost_ns();
            (ctx.sends, ctx.timer_ops, cost)
        };
        self.events = events_buf;
        self.processed += 1;

        // `on_start` models pre-loaded initial state, not a dispatched
        // event: charge only explicitly accrued (crypto) cost.
        let service = if is_start {
            cost_ns
        } else {
            self.nodes[idx].cpu.service_ns(msg_len, cost_ns, queue_len)
        };
        let done = start + SimDuration(service);
        self.nodes[idx].busy_until = done;
        let stats = &mut self.nodes[idx].stats;
        stats.callbacks += 1;
        stats.busy_ns += service;
        stats.busy_until = done;

        if let Some(name) = dispatch_label {
            // seq: the callback's processed-ordinal (incremented above) —
            // deterministic and unique within one engine.
            let rec = TraceRecord {
                time_ns: start.as_ns(),
                dur_ns: service,
                seq: self.processed - 1,
                node: idx,
                kind: TraceKind::Dispatch,
                name,
                parent: None,
            };
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.record(rec);
            }
        }

        // Transmit queued sends at completion time (unless a fault plan
        // has muted or degraded this node's uplink by then). Windows are
        // half-open `[from, until)`; `until = None` means forever.
        let in_window =
            |from: SimTime, until: Option<SimTime>| done >= from && until.is_none_or(|u| done < u);
        let muted = self.nodes[idx]
            .mute
            .is_some_and(|(from, until)| in_window(from, until));
        let extra_delay = self.nodes[idx]
            .send_delay
            .and_then(|(from, until, extra)| in_window(from, until).then_some(extra))
            .unwrap_or(SimDuration::ZERO);
        let dup = self.nodes[idx]
            .dup_sends
            .is_some_and(|(from, until)| in_window(from, until));
        let reorder_jitter = self.nodes[idx]
            .reorder_sends
            .and_then(|(from, until, jitter)| in_window(from, until).then_some(jitter))
            .filter(|j| *j > SimDuration::ZERO);
        for (to, msg) in sends.drain(..) {
            // The actor addresses peers relative to its base.
            let to = to + base;
            // Self-addressed messages never traverse the uplink, so the
            // mute/delay/duplicate/reorder faults (which model a cut or
            // degraded network interface) do not apply to them.
            let local = to == idx;
            if muted && !local {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.record(TraceRecord {
                        time_ns: done.as_ns(),
                        dur_ns: 0,
                        seq: self.messages_sent,
                        node: idx,
                        kind: TraceKind::Fault,
                        name: "mute_drop".to_string(),
                        parent: None,
                    });
                }
                continue;
            }
            let len = msg.wire_len();
            self.messages_sent += 1;
            self.bytes_sent += len as u64;
            let (latency, extra) = if local {
                (SimDuration::from_us(1), SimDuration::ZERO)
            } else {
                (
                    self.net.link(idx, to).latency(&mut self.rng, done, len),
                    extra_delay,
                )
            };
            // The duplicate is a retransmission of the same payload with
            // its own latency draw (sampled before the jitter draws so
            // the RNG stream order is fixed and replayable).
            let copy = (dup && !local).then(|| {
                (
                    msg.clone(),
                    self.net.link(idx, to).latency(&mut self.rng, done, len),
                )
            });
            let jitter = |rng: &mut StdRng| match reorder_jitter {
                Some(j) if !local => {
                    use rand::Rng as _;
                    SimDuration(rng.gen_range(0..=j.0))
                }
                _ => SimDuration::ZERO,
            };
            let first_jitter = jitter(&mut self.rng);
            let key = self.arena.insert(msg);
            let n = &mut self.nodes[to];
            n.inflight += 1;
            n.stats.max_inflight = n.stats.max_inflight.max(n.inflight);
            self.push_net(
                done + latency + extra + first_jitter,
                NetEventKind::Deliver {
                    to,
                    from: idx,
                    key,
                    len: len as u32,
                },
            );
            if let Some((copy_msg, copy_latency)) = copy {
                self.messages_sent += 1;
                self.bytes_sent += len as u64;
                let copy_jitter = jitter(&mut self.rng);
                let key = self.arena.insert(copy_msg);
                let n = &mut self.nodes[to];
                n.inflight += 1;
                n.stats.max_inflight = n.stats.max_inflight.max(n.inflight);
                self.push_net(
                    done + copy_latency + extra + copy_jitter,
                    NetEventKind::Deliver {
                        to,
                        from: idx,
                        key,
                        len: len as u32,
                    },
                );
            }
        }
        self.spare_sends = sends;

        // Apply timer mutations at completion time, in call order.
        for op in timer_ops.drain(..) {
            match op {
                TimerOp::Cancel(tag) => self.cancel_arming(idx, tag),
                TimerOp::Set(delay, tag) => {
                    self.cancel_arming(idx, tag);
                    let node = &mut self.nodes[idx];
                    node.next_token += 1;
                    let token = node.next_token;
                    let seq = self.alloc_seq();
                    let entry = self.push_node(
                        done + delay,
                        seq,
                        NodeEvent::TimerFire {
                            node: idx,
                            tag,
                            token,
                        },
                    );
                    self.nodes[idx]
                        .timers
                        .push(ArmedTimer { tag, token, entry });
                }
            }
        }
        self.spare_timer_ops = timer_ops;

        // Continue draining this node's queue when the service completes
        // — or go idle, reserving the dequeue key the next stimulus may
        // redeem (ProcessNext elision).
        let seq = self.alloc_seq();
        if self.nodes[idx].inbox.is_empty() {
            self.nodes[idx].reservation = Some((done, seq));
            self.nodes[idx].busy = false;
        } else {
            self.push_node(done, seq, NodeEvent::Ready { node: idx });
            self.nodes[idx].busy = true;
        }
    }

    /// Removes `tag`'s live arming (if any): drops it from the node's
    /// armed set and, when the fire still sits in the wheel, cancels the
    /// wheel entry through its generation-stamped handle.
    fn cancel_arming(&mut self, idx: usize, tag: u64) {
        let node = &mut self.nodes[idx];
        if let Some(i) = node.timers.iter().position(|t| t.tag == tag) {
            let t = node.timers.swap_remove(i);
            if let Some(id) = t.entry {
                self.wheel.cancel(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{DelayModel, LinkModel};

    #[derive(Clone, Debug)]
    struct Ping(usize);

    impl WireSize for Ping {
        fn wire_len(&self) -> usize {
            16
        }
    }

    #[derive(Debug)]
    enum Obs {
        Got(usize),
        TimerFired(u64),
    }

    /// Echoes each ping back with an incremented hop count, up to a limit.
    struct Echo {
        peer: usize,
        limit: usize,
        initiate: bool,
    }

    impl Actor for Echo {
        type Msg = Ping;
        type Event = Obs;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
            if self.initiate {
                ctx.send(self.peer, Ping(0));
            }
        }

        fn on_message(&mut self, _from: usize, msg: Ping, ctx: &mut Ctx<'_, Ping, Obs>) {
            ctx.emit(Obs::Got(msg.0));
            if msg.0 < self.limit {
                ctx.send(self.peer, Ping(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Ping, Obs>) {
            ctx.emit(Obs::TimerFired(tag));
        }
    }

    fn constant_net(us: u64) -> NetworkModel {
        NetworkModel::uniform(LinkModel {
            delay: DelayModel::Constant(SimDuration::from_us(us)),
            per_byte_ns: 0,
        })
    }

    #[test]
    fn ping_pong_delivers_in_order() {
        let mut w: World<Ping, Obs> = World::new(constant_net(100), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 4,
                initiate: true,
            }),
            CpuModel::zero(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 4,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.start();
        w.run_until_idle(1_000);
        let hops: Vec<usize> = w
            .drain_events()
            .into_iter()
            .map(|e| match e.event {
                Obs::Got(h) => h,
                _ => panic!("unexpected"),
            })
            .collect();
        assert_eq!(hops, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn virtual_time_advances_with_latency() {
        let mut w: World<Ping, Obs> = World::new(constant_net(250), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 0,
                initiate: true,
            }),
            CpuModel::zero(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 0,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.start();
        w.run_until_idle(100);
        let ev = &w.events()[0];
        assert_eq!(ev.time, SimTime::from_us(250));
    }

    #[test]
    fn cpu_service_time_queues_messages() {
        // Node 1 takes 1 ms per event; two near-simultaneous messages are
        // served back to back.
        struct Sender;
        impl Actor for Sender {
            type Msg = Ping;
            type Event = Obs;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
                ctx.send(1, Ping(0));
                ctx.send(1, Ping(1));
            }
            fn on_message(&mut self, _f: usize, _m: Ping, _c: &mut Ctx<'_, Ping, Obs>) {}
            fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, Ping, Obs>) {}
        }
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(Box::new(Sender), CpuModel::zero());
        let cpu = CpuModel {
            per_event_ns: 1_000_000,
            per_byte_ns: 0,
            overload_threshold: usize::MAX,
            overload_penalty: 0.0,
        };
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: usize::MAX,
                initiate: false,
            }),
            cpu,
        );
        w.start();
        w.run_until(SimTime::from_ms(10));
        let times: Vec<SimTime> = w.events().iter().map(|e| e.time).collect();
        assert_eq!(times.len(), 2);
        // First served on arrival, second only after the first's service.
        assert_eq!(times[0], SimTime::from_us(10));
        assert_eq!(times[1], SimTime::from_us(10) + SimDuration::from_ms(1));
    }

    #[test]
    fn timers_fire_and_rearm_supersedes() {
        struct TimerActor;
        impl Actor for TimerActor {
            type Msg = Ping;
            type Event = Obs;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
                // Arm tag 7 at 5 ms then immediately re-arm at 1 ms: only
                // the re-arm fires.
                ctx.set_timer(SimDuration::from_ms(5), 7);
                ctx.set_timer(SimDuration::from_ms(1), 7);
                // Arm and cancel tag 9: never fires.
                ctx.set_timer(SimDuration::from_ms(2), 9);
                ctx.cancel_timer(9);
            }
            fn on_message(&mut self, _f: usize, _m: Ping, _c: &mut Ctx<'_, Ping, Obs>) {}
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Ping, Obs>) {
                ctx.emit(Obs::TimerFired(tag));
            }
        }
        let mut w: World<Ping, Obs> = World::new(constant_net(1), 1);
        w.add_node(Box::new(TimerActor), CpuModel::zero());
        w.start();
        w.run_until_idle(100);
        let fired: Vec<u64> = w
            .drain_events()
            .into_iter()
            .map(|e| match e.event {
                Obs::TimerFired(t) => t,
                _ => panic!(),
            })
            .collect();
        assert_eq!(fired, vec![7]);
    }

    /// A firing that is already queued behind other work when its tag is
    /// re-armed must be skipped (one-shot semantics: a live firing
    /// consumes its arming; a superseded one is stale at dequeue).
    #[test]
    fn queued_firing_superseded_before_dequeue_is_skipped() {
        // Node 0 arms tag 5 at 1 ms with a 10 ms-per-event CPU. A message
        // arriving just before the firing occupies the CPU; while the
        // firing waits in the queue, the message callback re-arms tag 5.
        // The queued firing is stale at dequeue; only the re-armed one
        // (at ~11 ms + 3 ms) fires.
        struct Rearm {
            fired: u64,
        }
        impl Actor for Rearm {
            type Msg = Ping;
            type Event = Obs;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
                ctx.set_timer(SimDuration::from_ms(1), 5);
            }
            fn on_message(&mut self, _f: usize, _m: Ping, ctx: &mut Ctx<'_, Ping, Obs>) {
                ctx.set_timer(SimDuration::from_ms(3), 5);
            }
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Ping, Obs>) {
                self.fired += 1;
                ctx.emit(Obs::TimerFired(tag));
            }
        }
        struct Poker;
        impl Actor for Poker {
            type Msg = Ping;
            type Event = Obs;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
                ctx.send(0, Ping(0));
            }
            fn on_message(&mut self, _f: usize, _m: Ping, _c: &mut Ctx<'_, Ping, Obs>) {}
            fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, Ping, Obs>) {}
        }
        let mut w: World<Ping, Obs> = World::new(constant_net(900), 1);
        let slow = CpuModel {
            per_event_ns: 10_000_000,
            per_byte_ns: 0,
            overload_threshold: usize::MAX,
            overload_penalty: 0.0,
        };
        w.add_node(Box::new(Rearm { fired: 0 }), slow);
        w.add_node(Box::new(Poker), CpuModel::zero());
        w.start();
        w.run_until_idle(100);
        let fired: Vec<(SimTime, u64)> = w
            .drain_events()
            .into_iter()
            .filter_map(|e| match e.event {
                Obs::TimerFired(t) => Some((e.time, t)),
                _ => None,
            })
            .collect();
        // Exactly one firing, from the re-arm: message served [0.9, 10.9]
        // ms, re-arm due 13.9 ms.
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 5);
        assert_eq!(fired[0].0, SimTime(13_900_000));
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 10,
                initiate: true,
            }),
            CpuModel::zero(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 10,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.crash(1);
        w.start();
        w.run_until_idle(100);
        assert!(w.events().is_empty());
        assert!(w.is_crashed(1));
    }

    #[test]
    fn deterministic_with_same_seed() {
        fn run(seed: u64) -> Vec<(SimTime, usize)> {
            let mut w: World<Ping, Obs> = World::new(
                NetworkModel::uniform(LinkModel {
                    delay: DelayModel::Uniform(SimDuration::from_us(50), SimDuration::from_us(150)),
                    per_byte_ns: 10,
                }),
                seed,
            );
            w.add_node(
                Box::new(Echo {
                    peer: 1,
                    limit: 20,
                    initiate: true,
                }),
                CpuModel::default(),
            );
            w.add_node(
                Box::new(Echo {
                    peer: 0,
                    limit: 20,
                    initiate: false,
                }),
                CpuModel::default(),
            );
            w.start();
            w.run_until_idle(10_000);
            w.drain_events()
                .into_iter()
                .map(|e| (e.time, e.node))
                .collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn inject_delivers_external_message() {
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 0,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.start();
        w.inject(0, 99, Ping(7));
        w.run_until_idle(100);
        assert_eq!(w.events().len(), 1);
    }

    #[test]
    fn counters_track_traffic() {
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 2,
                initiate: true,
            }),
            CpuModel::zero(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 2,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.start();
        w.run_until_idle(100);
        assert_eq!(w.messages_sent(), 3); // hops 0,1,2
        assert_eq!(w.bytes_sent(), 48);
        assert!(w.processed() > 0);
    }

    /// `max_queue` is a true high-water mark: a burst of `k` messages to
    /// an idle node records `k` (the pre-fix sampling point — after the
    /// dequeue — recorded `k − 1`).
    #[test]
    fn max_queue_counts_the_whole_burst() {
        struct Burst;
        impl Actor for Burst {
            type Msg = Ping;
            type Event = Obs;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
                for i in 0..5 {
                    ctx.send(1, Ping(i));
                }
            }
            fn on_message(&mut self, _f: usize, _m: Ping, _c: &mut Ctx<'_, Ping, Obs>) {}
            fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, Ping, Obs>) {}
        }
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(Box::new(Burst), CpuModel::zero());
        let cpu = CpuModel {
            per_event_ns: 1_000_000,
            per_byte_ns: 0,
            overload_threshold: usize::MAX,
            overload_penalty: 0.0,
        };
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 0,
                initiate: false,
            }),
            cpu,
        );
        w.start();
        w.run_until_idle(1_000);
        // All 5 arrive at the same instant (constant latency) before the
        // first service dequeues any of them.
        assert_eq!(w.node_stats(1).max_queue, 5);
    }

    /// Utilization sampled mid-service must not exceed 1: the unexpired
    /// service tail is excluded.
    #[test]
    fn utilization_clamps_midservice_accrual() {
        struct Sender;
        impl Actor for Sender {
            type Msg = Ping;
            type Event = Obs;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
                ctx.send(1, Ping(0));
            }
            fn on_message(&mut self, _f: usize, _m: Ping, _c: &mut Ctx<'_, Ping, Obs>) {}
            fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, Ping, Obs>) {}
        }
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(Box::new(Sender), CpuModel::zero());
        let cpu = CpuModel {
            per_event_ns: 50_000_000, // 50 ms per event
            per_byte_ns: 0,
            overload_threshold: usize::MAX,
            overload_penalty: 0.0,
        };
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 0,
                initiate: false,
            }),
            cpu,
        );
        w.start();
        // Sample 5 ms in: the 50 ms service started at 10 µs is mostly
        // unexpired. Raw busy_ns/now would report ≈10×.
        w.run_until(SimTime::from_ms(5));
        let stats = w.node_stats(1);
        let u = stats.utilization(w.now());
        assert!(u <= 1.0, "utilization {u} exceeds 1");
        // Busy since 10 µs: (5 ms − 10 µs) / 5 ms ≈ 0.998.
        assert!((u - 0.998).abs() < 0.01, "utilization {u} not ≈0.998");
        // After the service completes, utilization reflects 50 ms of
        // work over 100 ms elapsed.
        w.run_until(SimTime::from_ms(100));
        let u = w.node_stats(1).utilization(w.now());
        assert!((u - 0.5).abs() < 0.01, "utilization {u} not ≈0.5");
    }

    /// ProcessNext elision: a request/response exchange must cost about
    /// one heap push per callback (the delivery), not two.
    #[test]
    fn heap_traffic_stays_below_processed_events() {
        let mut w: World<Ping, Obs> = World::new(constant_net(100), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 200,
                initiate: true,
            }),
            CpuModel::default(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 200,
                initiate: false,
            }),
            CpuModel::default(),
        );
        w.start();
        w.run_until_idle(10_000);
        assert!(w.processed() > 200);
        assert!(
            w.heap_pushes_per_callback() < 1.1,
            "heap pushes per callback: {:.3}",
            w.heap_pushes_per_callback()
        );
    }
}
