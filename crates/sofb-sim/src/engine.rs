//! The discrete-event engine: actors, virtual network, per-node CPU queues.
//!
//! Every node hosts one [`Actor`] (a sans-io protocol state machine). The
//! engine delivers three kinds of stimuli — start, message, timer — and the
//! actor responds by queueing sends, arming timers and emitting
//! observations through the [`Ctx`] handle. Nodes process stimuli serially:
//! each callback's service time (dispatch + marshalling + accrued crypto
//! cost) advances the node's CPU clock, so queueing delay and saturation
//! emerge naturally.
//!
//! Execution is deterministic for a given seed: the event heap breaks time
//! ties by insertion sequence number.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cpu::CpuModel;
use crate::delay::NetworkModel;
use crate::time::{SimDuration, SimTime};

/// Messages must report their wire size so the engine can charge
/// serialization and marshalling costs.
pub trait WireSize {
    /// Serialized length in bytes.
    fn wire_len(&self) -> usize;
}

/// A protocol state machine hosted on one simulated node.
pub trait Actor {
    /// The message type exchanged between nodes of this world.
    type Msg: Clone + WireSize + fmt::Debug;
    /// Observations surfaced to the experiment harness.
    type Event: fmt::Debug;

    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Event>);

    /// Called when a message from `from` is dequeued for processing.
    fn on_message(
        &mut self,
        from: usize,
        msg: Self::Msg,
        ctx: &mut Ctx<'_, Self::Msg, Self::Event>,
    );

    /// Called when an armed timer with `tag` fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg, Self::Event>);

    /// Drains virtual CPU nanoseconds accrued during the last callback
    /// (protocols forward their `CryptoProvider::take_cost_ns` here).
    fn take_cost_ns(&mut self) -> u64 {
        0
    }
}

/// An observation with its emission time and source node.
#[derive(Debug, Clone)]
pub struct TimedEvent<E> {
    /// Virtual time at which the observation was emitted.
    pub time: SimTime,
    /// Node that emitted it.
    pub node: usize,
    /// The observation itself.
    pub event: E,
}

/// Handle through which an actor interacts with the world during a
/// callback.
pub struct Ctx<'a, M, E> {
    now: SimTime,
    fired: Option<SimTime>,
    me: usize,
    rng: &'a mut StdRng,
    sends: Vec<(usize, M)>,
    timer_ops: Vec<TimerOp>,
    events: &'a mut Vec<TimedEvent<E>>,
}

/// A timer mutation, applied in call order when the callback completes.
#[derive(Debug)]
enum TimerOp {
    Set(SimDuration, u64),
    Cancel(u64),
}

impl<M, E> Ctx<'_, M, E> {
    /// Current virtual time (start of this callback's service).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// For timer callbacks: the instant the timer *fired* (entered this
    /// node's queue). `now() - fired_at()` is the queueing delay the
    /// firing spent waiting behind other work — measurements that start
    /// "at the tick" (like the paper's batch-formation instant) should
    /// use this. `None` for message and start callbacks.
    pub fn fired_at(&self) -> Option<SimTime> {
        self.fired
    }

    /// The hosting node's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Queues a message to `to` (transmitted when the callback's service
    /// completes). Sending to self is allowed and near-instant.
    pub fn send(&mut self, to: usize, msg: M) {
        self.sends.push((to, msg));
    }

    /// Queues `msg` to every node in `targets` (cloning per target except
    /// the last, which takes the original — one fewer deep copy per
    /// multicast on the hot path).
    pub fn multicast<I: IntoIterator<Item = usize>>(&mut self, targets: I, msg: M)
    where
        M: Clone,
    {
        let mut it = targets.into_iter();
        let Some(mut pending) = it.next() else { return };
        for t in it {
            self.sends.push((pending, msg.clone()));
            pending = t;
        }
        self.sends.push((pending, msg));
    }

    /// Arms (or re-arms) the timer `tag` to fire `delay` after this
    /// callback completes. Re-arming supersedes any earlier arming.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timer_ops.push(TimerOp::Set(delay, tag));
    }

    /// Disarms timer `tag`.
    pub fn cancel_timer(&mut self, tag: u64) {
        self.timer_ops.push(TimerOp::Cancel(tag));
    }

    /// Emits an observation for the harness.
    pub fn emit(&mut self, event: E) {
        self.events.push(TimedEvent {
            time: self.now,
            node: self.me,
            event,
        });
    }

    /// Deterministic randomness (seeded per world).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Outputs collected from a standalone callback invocation (used by hosts
/// other than the simulator, e.g. the threaded real-time runtime).
#[derive(Debug)]
pub struct CtxOutputs<M> {
    /// Messages to transmit, in call order.
    pub sends: Vec<(usize, M)>,
    /// Timer mutations, in call order.
    pub timers: Vec<TimerRequest>,
}

/// A timer mutation requested by an actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerRequest {
    /// Arm (or re-arm) `tag` to fire after the delay.
    Set(SimDuration, u64),
    /// Disarm `tag`.
    Cancel(u64),
}

impl<'a, M, E> Ctx<'a, M, E> {
    /// Builds a context for driving an [`Actor`] outside the simulator.
    ///
    /// The caller supplies the current time, node identity, an RNG and an
    /// event sink, invokes the actor callback, then collects the requested
    /// sends/timer changes with [`Ctx::into_outputs`].
    pub fn standalone(
        now: SimTime,
        me: usize,
        rng: &'a mut StdRng,
        events: &'a mut Vec<TimedEvent<E>>,
    ) -> Self {
        Ctx {
            now,
            fired: None,
            me,
            rng,
            sends: Vec::new(),
            timer_ops: Vec::new(),
            events,
        }
    }

    /// Extracts the actions the actor requested during the callback.
    pub fn into_outputs(self) -> CtxOutputs<M> {
        CtxOutputs {
            sends: self.sends,
            timers: self
                .timer_ops
                .into_iter()
                .map(|op| match op {
                    TimerOp::Set(d, t) => TimerRequest::Set(d, t),
                    TimerOp::Cancel(t) => TimerRequest::Cancel(t),
                })
                .collect(),
        }
    }
}

/// A stimulus waiting in a node's input queue.
#[derive(Debug)]
enum Incoming<M> {
    Message {
        from: usize,
        msg: M,
    },
    Timer {
        tag: u64,
        token: u64,
        fired: SimTime,
    },
}

/// Heap entry kinds.
#[derive(Debug)]
enum EngineEventKind<M> {
    Deliver { to: usize, from: usize, msg: M },
    TimerFire { node: usize, tag: u64, token: u64 },
    ProcessNext { node: usize },
    Crash { node: usize },
}

struct EngineEvent<M> {
    time: SimTime,
    seq: u64,
    kind: EngineEventKind<M>,
}

impl<M> PartialEq for EngineEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for EngineEvent<M> {}
impl<M> PartialOrd for EngineEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for EngineEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct NodeState<M, E> {
    actor: Box<dyn Actor<Msg = M, Event = E>>,
    inbox: VecDeque<Incoming<M>>,
    busy: bool,
    busy_until: SimTime,
    timer_tokens: HashMap<u64, u64>,
    next_token: u64,
    crashed: bool,
    muted_from: Option<SimTime>,
    send_delay: Option<(SimTime, SimDuration)>,
    cpu: CpuModel,
    stats: NodeStats,
}

/// Per-node utilization counters (harness/introspection).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Callbacks processed.
    pub callbacks: u64,
    /// Total virtual service nanoseconds consumed.
    pub busy_ns: u64,
    /// Largest input-queue depth observed.
    pub max_queue: usize,
}

impl NodeStats {
    /// Fraction of `[0, now]` this node's CPU was busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_ns() == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / now.as_ns() as f64
    }
}

/// The simulated world: nodes, network, event heap, observation log.
pub struct World<M: Clone + WireSize + fmt::Debug, E: fmt::Debug> {
    nodes: Vec<NodeState<M, E>>,
    heap: BinaryHeap<Reverse<EngineEvent<M>>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    net: NetworkModel,
    events: Vec<TimedEvent<E>>,
    processed: u64,
    messages_sent: u64,
    bytes_sent: u64,
}

impl<M: Clone + WireSize + fmt::Debug, E: fmt::Debug> World<M, E> {
    /// Creates a world over `net` with deterministic randomness from
    /// `seed`. Add nodes with [`World::add_node`], then call
    /// [`World::start`].
    pub fn new(net: NetworkModel, seed: u64) -> Self {
        World {
            nodes: Vec::new(),
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            net,
            events: Vec::new(),
            processed: 0,
            messages_sent: 0,
            bytes_sent: 0,
        }
    }

    /// Adds a node hosting `actor` with the given CPU model; returns its
    /// index.
    pub fn add_node(&mut self, actor: Box<dyn Actor<Msg = M, Event = E>>, cpu: CpuModel) -> usize {
        self.nodes.push(NodeState {
            actor,
            inbox: VecDeque::new(),
            busy: false,
            busy_until: SimTime::ZERO,
            timer_tokens: HashMap::new(),
            next_token: 0,
            crashed: false,
            muted_from: None,
            send_delay: None,
            cpu,
            stats: NodeStats::default(),
        });
        self.nodes.len() - 1
    }

    /// Utilization counters for `node`.
    pub fn node_stats(&self, node: usize) -> NodeStats {
        self.nodes[node].stats
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total callbacks processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Total messages handed to the network.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total bytes handed to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Marks a node crashed: its queue is discarded and it receives no
    /// further callbacks. (Byzantine behaviours live in the actors; crash
    /// is the only failure the engine itself models.)
    pub fn crash(&mut self, node: usize) {
        self.nodes[node].crashed = true;
        self.nodes[node].inbox.clear();
    }

    /// True if `node` has been crashed.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.nodes[node].crashed
    }

    /// Schedules `node` to crash at virtual time `at`. A time already in
    /// the past is clamped to the current instant, i.e. the node crashes
    /// as soon as the event is processed.
    pub fn crash_at(&mut self, node: usize, at: SimTime) {
        let at = at.max(self.now);
        self.push(at, EngineEventKind::Crash { node });
    }

    /// Mutes `node` from `from` onward: it keeps processing input but all
    /// its sends are silently dropped (a silent-but-alive process, the
    /// time-domain fault every protocol variant must tolerate).
    ///
    /// Installing a second mute keeps the earlier of the two start
    /// times (the node can only be "mute from the first moment either
    /// plan applies").
    pub fn mute_from(&mut self, node: usize, from: SimTime) {
        let slot = &mut self.nodes[node].muted_from;
        *slot = Some(slot.map_or(from, |existing| existing.min(from)));
    }

    /// Adds `extra` latency to every message `node` sends from `from`
    /// onward (a degraded process / congested uplink).
    ///
    /// One delay plan per node: installing a second replaces the first
    /// (escalating degradation schedules are not supported).
    pub fn delay_sends_from(&mut self, node: usize, from: SimTime, extra: SimDuration) {
        self.nodes[node].send_delay = Some((from, extra));
    }

    /// Invokes `on_start` on every node (in index order, at time zero).
    pub fn start(&mut self) {
        for i in 0..self.nodes.len() {
            self.run_callback(i, None);
        }
    }

    /// Mutable access to a node's actor (for harness inspection between
    /// steps; prefer observations where possible).
    pub fn actor_mut(&mut self, node: usize) -> &mut dyn Actor<Msg = M, Event = E> {
        &mut *self.nodes[node].actor
    }

    /// Drains all observations emitted so far.
    pub fn drain_events(&mut self) -> Vec<TimedEvent<E>> {
        std::mem::take(&mut self.events)
    }

    /// Observations emitted so far (without draining).
    pub fn events(&self) -> &[TimedEvent<E>] {
        &self.events
    }

    fn push(&mut self, time: SimTime, kind: EngineEventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(EngineEvent { time, seq, kind }));
    }

    /// Processes a single engine event. Returns `false` when the heap is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        match ev.kind {
            EngineEventKind::Deliver { to, from, msg } => {
                let node = &mut self.nodes[to];
                if node.crashed {
                    return true;
                }
                node.inbox.push_back(Incoming::Message { from, msg });
                if !node.busy {
                    node.busy = true;
                    self.push(self.now, EngineEventKind::ProcessNext { node: to });
                }
            }
            EngineEventKind::TimerFire {
                node: idx,
                tag,
                token,
            } => {
                let node = &mut self.nodes[idx];
                if node.crashed {
                    return true;
                }
                // Only the latest arming of a tag is live.
                if node.timer_tokens.get(&tag) != Some(&token) {
                    return true;
                }
                let fired = self.now;
                node.inbox.push_back(Incoming::Timer { tag, token, fired });
                if !node.busy {
                    node.busy = true;
                    self.push(self.now, EngineEventKind::ProcessNext { node: idx });
                }
            }
            EngineEventKind::ProcessNext { node: idx } => {
                if self.nodes[idx].crashed {
                    return true;
                }
                let item = self.nodes[idx].inbox.pop_front();
                match item {
                    None => {
                        self.nodes[idx].busy = false;
                    }
                    Some(incoming) => {
                        self.run_callback(idx, Some(incoming));
                    }
                }
            }
            EngineEventKind::Crash { node } => {
                self.crash(node);
            }
        }
        true
    }

    /// Runs until virtual time would exceed `deadline` or the heap drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.time > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until no events remain (with a safety cap on callback count).
    ///
    /// # Panics
    ///
    /// Panics if more than `max_steps` engine events are processed, which
    /// almost always indicates a livelock in the hosted protocol.
    pub fn run_until_idle(&mut self, max_steps: u64) {
        let mut steps = 0u64;
        while self.step() {
            steps += 1;
            assert!(steps <= max_steps, "simulation exceeded {max_steps} steps");
        }
    }

    /// Delivers `msg` from a fictitious external source (e.g. a client
    /// co-located with `to`) at the current time.
    pub fn inject(&mut self, to: usize, from: usize, msg: M) {
        self.push(self.now, EngineEventKind::Deliver { to, from, msg });
    }

    fn run_callback(&mut self, idx: usize, incoming: Option<Incoming<M>>) {
        // A timer may have been re-armed or cancelled while this firing
        // was queued behind other work; skip stale firings (one-shot
        // semantics: a live firing consumes its arming).
        if let Some(Incoming::Timer { tag, token, .. }) = &incoming {
            let node = &mut self.nodes[idx];
            if node.timer_tokens.get(tag) != Some(token) {
                self.push(self.now, EngineEventKind::ProcessNext { node: idx });
                return;
            }
            node.timer_tokens.remove(tag);
        }
        let start = self.now.max(self.nodes[idx].busy_until);
        let msg_len = match &incoming {
            Some(Incoming::Message { msg, .. }) => msg.wire_len(),
            _ => 0,
        };
        let queue_len = self.nodes[idx].inbox.len();

        let is_start = incoming.is_none();
        let fired = match &incoming {
            Some(Incoming::Timer { fired, .. }) => Some(*fired),
            _ => None,
        };
        let mut events_buf = std::mem::take(&mut self.events);
        let (sends, timer_ops, cost_ns) = {
            let node = &mut self.nodes[idx];
            let mut ctx = Ctx {
                now: start,
                fired,
                me: idx,
                rng: &mut self.rng,
                sends: Vec::new(),
                timer_ops: Vec::new(),
                events: &mut events_buf,
            };
            match incoming {
                None => node.actor.on_start(&mut ctx),
                Some(Incoming::Message { from, msg }) => node.actor.on_message(from, msg, &mut ctx),
                Some(Incoming::Timer { tag, .. }) => node.actor.on_timer(tag, &mut ctx),
            }
            let cost = node.actor.take_cost_ns();
            (ctx.sends, ctx.timer_ops, cost)
        };
        self.events = events_buf;
        self.processed += 1;

        // `on_start` models pre-loaded initial state, not a dispatched
        // event: charge only explicitly accrued (crypto) cost.
        let service = if is_start {
            cost_ns
        } else {
            self.nodes[idx].cpu.service_ns(msg_len, cost_ns, queue_len)
        };
        let done = start + SimDuration(service);
        self.nodes[idx].busy_until = done;
        let stats = &mut self.nodes[idx].stats;
        stats.callbacks += 1;
        stats.busy_ns += service;
        stats.max_queue = stats.max_queue.max(queue_len);

        // Transmit queued sends at completion time (unless a fault plan
        // has muted or degraded this node's uplink by then).
        let muted = self.nodes[idx].muted_from.is_some_and(|from| done >= from);
        let extra_delay = self.nodes[idx]
            .send_delay
            .and_then(|(from, extra)| (done >= from).then_some(extra))
            .unwrap_or(SimDuration::ZERO);
        for (to, msg) in sends {
            // Self-addressed messages never traverse the uplink, so the
            // mute/delay faults (which model a cut or degraded network
            // interface) do not apply to them.
            let local = to == idx;
            if muted && !local {
                continue;
            }
            let len = msg.wire_len();
            self.messages_sent += 1;
            self.bytes_sent += len as u64;
            let (latency, extra) = if local {
                (SimDuration::from_us(1), SimDuration::ZERO)
            } else {
                (
                    self.net.link(idx, to).latency(&mut self.rng, done, len),
                    extra_delay,
                )
            };
            self.push(
                done + latency + extra,
                EngineEventKind::Deliver { to, from: idx, msg },
            );
        }

        // Apply timer mutations at completion time, in call order.
        for op in timer_ops {
            match op {
                TimerOp::Cancel(tag) => {
                    self.nodes[idx].timer_tokens.remove(&tag);
                }
                TimerOp::Set(delay, tag) => {
                    let node = &mut self.nodes[idx];
                    node.next_token += 1;
                    let token = node.next_token;
                    node.timer_tokens.insert(tag, token);
                    self.push(
                        done + delay,
                        EngineEventKind::TimerFire {
                            node: idx,
                            tag,
                            token,
                        },
                    );
                }
            }
        }

        // Continue draining this node's queue after the service completes.
        self.push(done, EngineEventKind::ProcessNext { node: idx });
        self.nodes[idx].busy = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{DelayModel, LinkModel};

    #[derive(Clone, Debug)]
    struct Ping(usize);

    impl WireSize for Ping {
        fn wire_len(&self) -> usize {
            16
        }
    }

    #[derive(Debug)]
    enum Obs {
        Got(usize),
        TimerFired(u64),
    }

    /// Echoes each ping back with an incremented hop count, up to a limit.
    struct Echo {
        peer: usize,
        limit: usize,
        initiate: bool,
    }

    impl Actor for Echo {
        type Msg = Ping;
        type Event = Obs;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
            if self.initiate {
                ctx.send(self.peer, Ping(0));
            }
        }

        fn on_message(&mut self, _from: usize, msg: Ping, ctx: &mut Ctx<'_, Ping, Obs>) {
            ctx.emit(Obs::Got(msg.0));
            if msg.0 < self.limit {
                ctx.send(self.peer, Ping(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Ping, Obs>) {
            ctx.emit(Obs::TimerFired(tag));
        }
    }

    fn constant_net(us: u64) -> NetworkModel {
        NetworkModel::uniform(LinkModel {
            delay: DelayModel::Constant(SimDuration::from_us(us)),
            per_byte_ns: 0,
        })
    }

    #[test]
    fn ping_pong_delivers_in_order() {
        let mut w: World<Ping, Obs> = World::new(constant_net(100), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 4,
                initiate: true,
            }),
            CpuModel::zero(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 4,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.start();
        w.run_until_idle(1_000);
        let hops: Vec<usize> = w
            .drain_events()
            .into_iter()
            .map(|e| match e.event {
                Obs::Got(h) => h,
                _ => panic!("unexpected"),
            })
            .collect();
        assert_eq!(hops, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn virtual_time_advances_with_latency() {
        let mut w: World<Ping, Obs> = World::new(constant_net(250), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 0,
                initiate: true,
            }),
            CpuModel::zero(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 0,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.start();
        w.run_until_idle(100);
        let ev = &w.events()[0];
        assert_eq!(ev.time, SimTime::from_us(250));
    }

    #[test]
    fn cpu_service_time_queues_messages() {
        // Node 1 takes 1 ms per event; two near-simultaneous messages are
        // served back to back.
        struct Sender;
        impl Actor for Sender {
            type Msg = Ping;
            type Event = Obs;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
                ctx.send(1, Ping(0));
                ctx.send(1, Ping(1));
            }
            fn on_message(&mut self, _f: usize, _m: Ping, _c: &mut Ctx<'_, Ping, Obs>) {}
            fn on_timer(&mut self, _t: u64, _c: &mut Ctx<'_, Ping, Obs>) {}
        }
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(Box::new(Sender), CpuModel::zero());
        let cpu = CpuModel {
            per_event_ns: 1_000_000,
            per_byte_ns: 0,
            overload_threshold: usize::MAX,
            overload_penalty: 0.0,
        };
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: usize::MAX,
                initiate: false,
            }),
            cpu,
        );
        w.start();
        w.run_until(SimTime::from_ms(10));
        let times: Vec<SimTime> = w.events().iter().map(|e| e.time).collect();
        assert_eq!(times.len(), 2);
        // First served on arrival, second only after the first's service.
        assert_eq!(times[0], SimTime::from_us(10));
        assert_eq!(times[1], SimTime::from_us(10) + SimDuration::from_ms(1));
    }

    #[test]
    fn timers_fire_and_rearm_supersedes() {
        struct TimerActor;
        impl Actor for TimerActor {
            type Msg = Ping;
            type Event = Obs;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping, Obs>) {
                // Arm tag 7 at 5 ms then immediately re-arm at 1 ms: only
                // the re-arm fires.
                ctx.set_timer(SimDuration::from_ms(5), 7);
                ctx.set_timer(SimDuration::from_ms(1), 7);
                // Arm and cancel tag 9: never fires.
                ctx.set_timer(SimDuration::from_ms(2), 9);
                ctx.cancel_timer(9);
            }
            fn on_message(&mut self, _f: usize, _m: Ping, _c: &mut Ctx<'_, Ping, Obs>) {}
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Ping, Obs>) {
                ctx.emit(Obs::TimerFired(tag));
            }
        }
        let mut w: World<Ping, Obs> = World::new(constant_net(1), 1);
        w.add_node(Box::new(TimerActor), CpuModel::zero());
        w.start();
        w.run_until_idle(100);
        let fired: Vec<u64> = w
            .drain_events()
            .into_iter()
            .map(|e| match e.event {
                Obs::TimerFired(t) => t,
                _ => panic!(),
            })
            .collect();
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 10,
                initiate: true,
            }),
            CpuModel::zero(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 10,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.crash(1);
        w.start();
        w.run_until_idle(100);
        assert!(w.events().is_empty());
        assert!(w.is_crashed(1));
    }

    #[test]
    fn deterministic_with_same_seed() {
        fn run(seed: u64) -> Vec<(SimTime, usize)> {
            let mut w: World<Ping, Obs> = World::new(
                NetworkModel::uniform(LinkModel {
                    delay: DelayModel::Uniform(SimDuration::from_us(50), SimDuration::from_us(150)),
                    per_byte_ns: 10,
                }),
                seed,
            );
            w.add_node(
                Box::new(Echo {
                    peer: 1,
                    limit: 20,
                    initiate: true,
                }),
                CpuModel::default(),
            );
            w.add_node(
                Box::new(Echo {
                    peer: 0,
                    limit: 20,
                    initiate: false,
                }),
                CpuModel::default(),
            );
            w.start();
            w.run_until_idle(10_000);
            w.drain_events()
                .into_iter()
                .map(|e| (e.time, e.node))
                .collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn inject_delivers_external_message() {
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 0,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.start();
        w.inject(0, 99, Ping(7));
        w.run_until_idle(100);
        assert_eq!(w.events().len(), 1);
    }

    #[test]
    fn counters_track_traffic() {
        let mut w: World<Ping, Obs> = World::new(constant_net(10), 1);
        w.add_node(
            Box::new(Echo {
                peer: 1,
                limit: 2,
                initiate: true,
            }),
            CpuModel::zero(),
        );
        w.add_node(
            Box::new(Echo {
                peer: 0,
                limit: 2,
                initiate: false,
            }),
            CpuModel::zero(),
        );
        w.start();
        w.run_until_idle(100);
        assert_eq!(w.messages_sent(), 3); // hops 0,1,2
        assert_eq!(w.bytes_sent(), 48);
        assert!(w.processed() > 0);
    }
}
