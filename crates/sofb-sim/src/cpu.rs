//! Per-node CPU service model.
//!
//! Each simulated node processes events serially (one CPU, as on the
//! paper's single-core Pentium IV machines). Handling an event costs a
//! fixed dispatch overhead, a per-byte marshalling cost, and whatever
//! virtual crypto cost the protocol accrued through its
//! `CryptoProvider` during the callback.
//!
//! The **overload penalty** models the thrash the paper observes past the
//! saturation point ("throughput ... starts dropping down", §5): once a
//! node's input queue exceeds `overload_threshold`, every event costs an
//! extra factor proportional to the excess (standing in for JVM garbage
//! collection and buffer pressure on the original testbed; see DESIGN.md).

/// CPU cost parameters for one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Fixed dispatch cost per handled event (scheduling, deserialization
    /// setup), nanoseconds.
    pub per_event_ns: u64,
    /// Marshalling cost per message byte, nanoseconds.
    pub per_byte_ns: u64,
    /// Queue length beyond which the overload penalty applies.
    pub overload_threshold: usize,
    /// Extra cost fraction per excess queued event
    /// (`cost *= 1 + frac * excess`).
    pub overload_penalty: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        // 2006-era Java server process over RMI/TCP: ~1 ms per message
        // dispatch (deserialization, object churn), ~50 ns/B copy. This
        // is what puts the paper's crypto-free CT baseline at its flat
        // ≈10 ms order latency.
        CpuModel {
            per_event_ns: 1_000_000,
            per_byte_ns: 50,
            overload_threshold: 96,
            overload_penalty: 0.005,
        }
    }
}

impl CpuModel {
    /// A free CPU (useful for protocol-logic unit tests where only the
    /// ordering of events matters).
    pub fn zero() -> Self {
        CpuModel {
            per_event_ns: 0,
            per_byte_ns: 0,
            overload_threshold: usize::MAX,
            overload_penalty: 0.0,
        }
    }

    /// Service time for one event of `msg_len` bytes with `extra_ns` of
    /// accrued crypto cost, given the current input queue length.
    pub fn service_ns(&self, msg_len: usize, extra_ns: u64, queue_len: usize) -> u64 {
        let base = self.per_event_ns + self.per_byte_ns * msg_len as u64 + extra_ns;
        if queue_len > self.overload_threshold {
            let excess = (queue_len - self.overload_threshold) as f64;
            (base as f64 * (1.0 + self.overload_penalty * excess)) as u64
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cost_components() {
        let cpu = CpuModel {
            per_event_ns: 100,
            per_byte_ns: 2,
            overload_threshold: 10,
            overload_penalty: 0.1,
        };
        assert_eq!(cpu.service_ns(50, 0, 0), 200);
        assert_eq!(cpu.service_ns(0, 1_000, 0), 1_100);
    }

    #[test]
    fn overload_penalty_applies_past_threshold() {
        let cpu = CpuModel {
            per_event_ns: 1_000,
            per_byte_ns: 0,
            overload_threshold: 10,
            overload_penalty: 0.5,
        };
        assert_eq!(cpu.service_ns(0, 0, 10), 1_000);
        // 5 excess events: 1 + 0.5*5 = 3.5x.
        assert_eq!(cpu.service_ns(0, 0, 15), 3_500);
    }

    #[test]
    fn zero_model_is_free() {
        let cpu = CpuModel::zero();
        assert_eq!(cpu.service_ns(10_000, 0, 1_000_000), 0);
    }
}
