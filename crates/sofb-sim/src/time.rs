//! Virtual time for the discrete-event simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use sofb_sim::time::SimTime;
///
/// let t = SimTime::ZERO + SimTime::from_ms(5).as_duration();
/// assert_eq!(t.as_ms_f64(), 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as "no deadline").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time `ms` milliseconds after start.
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time `us` microseconds after start.
    pub fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds a time `s` seconds after start.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since start.
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// Milliseconds since start, as a float.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Reinterprets this instant as a duration since start.
    pub fn as_duration(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span of `ms` milliseconds.
    pub fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span of `us` microseconds.
    pub fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span of `s` seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Nanoseconds in the span.
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span, as a float.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_us(1).as_ns(), 1_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimDuration::from_ms(2).as_ms_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10) + SimDuration::from_ms(5);
        assert_eq!(t, SimTime::from_ms(15));
        assert_eq!(t - SimTime::from_ms(10), SimDuration::from_ms(5));
        // Saturating difference never underflows.
        assert_eq!(SimTime::from_ms(1) - SimTime::from_ms(5), SimDuration::ZERO);
    }

    #[test]
    fn add_assign_and_display() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_ms(3);
        assert_eq!(t.to_string(), "3.000ms");
        assert_eq!(SimDuration::from_us(1500).to_string(), "1.500ms");
    }

    #[test]
    fn saturation_at_max() {
        let t = SimTime::MAX + SimDuration::from_ms(1);
        assert_eq!(t, SimTime::MAX);
    }
}
